//! Per-cell checkpoint journal for resumable campaigns.
//!
//! A campaign appends one JSON line per completed cell to its journal
//! file. When a run is interrupted and restarted with the same spec, the
//! journal is replayed and completed cells are skipped — the resumed run
//! reconstructs the exact [`SimResult`] of every finished cell, so the
//! final report is byte-identical to an uninterrupted run's.
//!
//! File layout (JSON Lines):
//!
//! ```text
//! {"ccsim_campaign_journal":1,"campaign":"<name>","spec":"<digest>"}
//! {"cell":"<workload>|<config>|<policy>","result":{...}}
//! ...
//! ```
//!
//! A header mismatch (different spec digest — the grid changed) restarts
//! the journal from scratch; a torn trailing line (the process died
//! mid-write) is dropped.
//!
//! # Concurrent writers: per-worker segments
//!
//! Two processes appending to one journal file could interleave partial
//! lines, so distributed campaigns give every worker its **own segment**
//! — `journal.<worker-id>.jsonl` next to the solo `journal.jsonl`, same
//! format ([`Journal::open_segment`]). Each file has exactly one writer
//! for its lifetime; [`merge_dir`] folds any set of segments (plus the
//! solo journal, if present) back into one completed-cell map, dropping
//! torn tails per segment and **failing loudly when two segments record
//! conflicting results for the same cell**. Identical duplicates (a
//! lease expired mid-cell and the cell was re-run — results are
//! deterministic, so re-runs agree) merge cleanly and are counted.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use ccsim_core::{CacheStats, DramStats, SimResult};

use crate::json::Json;

/// Journal format version.
const JOURNAL_VERSION: u64 = 1;

/// An append-only record of completed campaign cells.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    completed: BTreeMap<String, SimResult>,
    resumed: usize,
}

impl Journal {
    /// Opens the journal at `path`, replaying any completed cells recorded
    /// by a previous run of the same campaign (matching `spec_digest`).
    /// A missing, foreign or unreadable journal starts fresh.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn open(
        path: impl Into<PathBuf>,
        campaign: &str,
        spec_digest: &str,
    ) -> std::io::Result<Journal> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let (completed, valid_bytes) = match std::fs::read_to_string(&path) {
            Ok(text) => replay(&text, campaign, spec_digest),
            Err(_) => (BTreeMap::new(), 0),
        };
        let resumed = completed.len();
        let file = if valid_bytes == 0 {
            let mut f = File::create(&path)?;
            let header = Json::obj(vec![
                ("ccsim_campaign_journal", Json::int(JOURNAL_VERSION)),
                ("campaign", Json::str(campaign)),
                ("spec", Json::str(spec_digest)),
            ]);
            writeln!(f, "{header}")?;
            f.flush()?;
            f
        } else {
            // Drop any torn tail so new records append after the last
            // fully-written line, where the next replay will find them.
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(valid_bytes as u64)?;
            let mut f = OpenOptions::new().append(true).open(&path)?;
            f.flush()?;
            f
        };
        Ok(Journal { path, file, completed, resumed })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Cells replayed from a previous run at open time.
    pub fn resumed(&self) -> usize {
        self.resumed
    }

    /// The completed-cell map (cell id to result), including cells
    /// recorded during this run.
    pub fn completed(&self) -> &BTreeMap<String, SimResult> {
        &self.completed
    }

    /// Records a completed cell and flushes it to disk so a kill after
    /// this call can never lose the cell.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn record(&mut self, cell: &str, result: &SimResult) -> std::io::Result<()> {
        let line =
            Json::obj(vec![("cell", Json::str(cell)), ("result", sim_result_to_json(result))]);
        writeln!(self.file, "{line}")?;
        self.file.flush()?;
        self.completed.insert(cell.to_owned(), result.clone());
        Ok(())
    }

    /// Read-only replay: the completed cells the journal at `path` holds
    /// for this campaign/spec, creating and truncating nothing (campaign
    /// dry-runs inspect journals through this). A missing, foreign or
    /// torn journal simply yields fewer (or no) cells.
    pub fn peek_completed(
        path: &Path,
        campaign: &str,
        spec_digest: &str,
    ) -> BTreeMap<String, SimResult> {
        match std::fs::read_to_string(path) {
            Ok(text) => replay(&text, campaign, spec_digest).0,
            Err(_) => BTreeMap::new(),
        }
    }

    /// The journal-segment path of `worker` under `dir`:
    /// `journal.<worker>.jsonl`.
    pub fn segment_path(dir: &Path, worker: &str) -> PathBuf {
        dir.join(format!("journal.{worker}.jsonl"))
    }

    /// Opens (or resumes) the per-worker journal segment of `worker`
    /// under `dir` — the concurrent-writer-safe form of [`Journal::open`]:
    /// each worker appends only to its own file, so two workers can never
    /// interleave partial lines no matter how the shared filesystem
    /// orders their writes.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn open_segment(
        dir: &Path,
        worker: &str,
        campaign: &str,
        spec_digest: &str,
    ) -> std::io::Result<Journal> {
        Journal::open(Self::segment_path(dir, worker), campaign, spec_digest)
    }
}

/// The result of merging every journal segment in a directory
/// ([`merge_dir`]).
#[derive(Debug, Default)]
pub struct MergedJournal {
    /// The union of completed cells across all segments.
    pub completed: BTreeMap<String, SimResult>,
    /// Valid cell lines read across all segments (>= `completed.len()`).
    pub entries: usize,
    /// Cells recorded by more than one segment with **identical** results
    /// (`entries - completed.len()`); conflicting duplicates are an error
    /// instead.
    pub duplicates: usize,
    /// `(file name, valid cell lines)` per matching segment, sorted by
    /// file name.
    pub segments: Vec<(String, usize)>,
    /// Segments (re)parsed this merge — fully on first sight, suffix-only
    /// on growth.
    pub segments_scanned: usize,
    /// Segments served straight from the [`MergeCursor`] because their
    /// length was unchanged — zero bytes read.
    pub segments_reused: usize,
}

/// Per-segment offset cursors for incremental [`merge_dir_cached`]
/// polling.
///
/// Each tracked segment remembers how many bytes of valid prefix were
/// already parsed and the cells they held. On the next merge, an
/// unchanged file is served from the cursor with **zero I/O**, and a
/// grown file is read **from its previous valid offset only** — turning
/// an N-segment poll loop (`ccsim campaign watch`, the worker's merge
/// rounds) from O(total journal bytes) per poll into O(new bytes). A
/// shrunk or rewritten file falls back to a full re-read, so semantics
/// stay byte-identical to [`merge_dir`].
#[derive(Debug, Default)]
pub struct MergeCursor {
    /// The (campaign, spec digest) this cursor's state belongs to;
    /// reusing the cursor for a different grid resets it.
    key: Option<(String, String)>,
    segments: BTreeMap<String, SegmentCursor>,
}

impl MergeCursor {
    /// An empty cursor: the first merge through it reads everything.
    pub fn new() -> MergeCursor {
        MergeCursor::default()
    }
}

#[derive(Debug)]
struct SegmentCursor {
    /// Bytes of this segment observed at the last parse.
    seen_len: u64,
    /// Byte length of the valid prefix (header + whole cell lines); 0
    /// when the header did not match this campaign/spec.
    valid_bytes: usize,
    /// Completed cells parsed from the valid prefix.
    cells: BTreeMap<String, SimResult>,
}

/// Merges the solo `journal.jsonl` plus every `journal.<worker>.jsonl`
/// segment under `dir` for (campaign, spec digest) into one
/// completed-cell map, read-only. Missing directories yield an empty
/// merge; foreign-spec and torn-tail content is skipped per segment
/// exactly as [`Journal::open`] would.
///
/// # Errors
///
/// Returns a message naming the first cell for which two segments hold
/// **different** results — the distributed-campaign invariant that every
/// cell is a deterministic function of the spec has been violated (mixed
/// binaries or a corrupted segment), and assembling a report would
/// silently pick one of the two.
pub fn merge_dir(dir: &Path, campaign: &str, spec_digest: &str) -> Result<MergedJournal, String> {
    merge_dir_cached(dir, campaign, spec_digest, &mut MergeCursor::new())
}

/// [`merge_dir`] with a [`MergeCursor`]: repeated merges of the same
/// directory skip unchanged segments entirely and read only the
/// appended suffix of grown ones. Same output as [`merge_dir`] for any
/// sequence of calls; new, deleted, truncated and rewritten segments
/// are all picked up.
///
/// # Errors
///
/// Exactly as [`merge_dir`]: the first cross-segment result conflict.
pub fn merge_dir_cached(
    dir: &Path,
    campaign: &str,
    spec_digest: &str,
    cursor: &mut MergeCursor,
) -> Result<MergedJournal, String> {
    let _span = ccsim_obs::metrics().journal_merge_ns.span();
    let key = (campaign.to_owned(), spec_digest.to_owned());
    if cursor.key.as_ref() != Some(&key) {
        cursor.segments.clear();
        cursor.key = Some(key);
    }
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Err(_) => Vec::new(),
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                // Matches worker segments (`journal.<id>.jsonl`) and the
                // solo `journal.jsonl` alike.
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("journal.") && n.ends_with(".jsonl"))
            })
            .collect(),
    };
    paths.sort();
    let mut merged = MergedJournal::default();
    let mut present: Vec<String> = Vec::with_capacity(paths.len());
    for path in paths {
        let name = path.file_name().unwrap_or_default().to_string_lossy().into_owned();
        let Some(seg) = advance_segment_cursor(&path, &name, campaign, spec_digest, cursor) else {
            continue;
        };
        present.push(name.clone());
        if seg.reused {
            merged.segments_reused += 1;
            ccsim_obs::metrics().journal_segments_reused.inc();
        } else {
            merged.segments_scanned += 1;
            ccsim_obs::metrics().journal_segments_scanned.inc();
        }
        let cells = &cursor.segments[&name].cells;
        merged.entries += cells.len();
        merged.segments.push((name.clone(), cells.len()));
        for (cell, result) in cells {
            match merged.completed.get(cell) {
                None => {
                    merged.completed.insert(cell.clone(), result.clone());
                }
                Some(existing) if existing == result => merged.duplicates += 1,
                Some(_) => {
                    return Err(format!(
                        "conflicting results for cell {cell:?}: segment {name} disagrees with an \
                         earlier segment — refusing to assemble (were the segments produced by \
                         different binaries or a corrupted file?)"
                    ));
                }
            }
        }
    }
    // Forget segments whose files are gone, so a recreated file is
    // re-read from scratch.
    cursor.segments.retain(|name, _| present.iter().any(|p| p == name));
    Ok(merged)
}

/// How [`advance_segment_cursor`] refreshed one segment.
struct SegmentAdvance {
    reused: bool,
}

/// Brings `cursor`'s entry for `name` up to date with the file at
/// `path`: zero I/O when the length is unchanged, suffix-only parse
/// when it grew, full re-read otherwise. Returns `None` when the file
/// vanished or is unreadable (the segment is skipped this round, as
/// [`merge_dir`] always did).
fn advance_segment_cursor(
    path: &Path,
    name: &str,
    campaign: &str,
    spec_digest: &str,
    cursor: &mut MergeCursor,
) -> Option<SegmentAdvance> {
    let file_len = std::fs::metadata(path).ok()?.len();
    if let Some(seg) = cursor.segments.get_mut(name) {
        if file_len == seg.seen_len {
            return Some(SegmentAdvance { reused: true });
        }
        // Grown with a matching header: parse the appended suffix only.
        // (A previously mismatched header — valid_bytes 0 — always falls
        // through to a full re-read: the file may have been rewritten
        // for this spec since.)
        if file_len > seg.seen_len && seg.valid_bytes > 0 {
            use std::io::{Read as _, Seek as _};
            let mut file = File::open(path).ok()?;
            file.seek(std::io::SeekFrom::Start(seg.valid_bytes as u64)).ok()?;
            let mut suffix = String::new();
            if file.read_to_string(&mut suffix).is_err() {
                // Non-UTF-8 tail: treat like a torn line — keep what was
                // valid, note the observed length so an unchanged file
                // is not re-probed.
                seg.seen_len = file_len;
                return Some(SegmentAdvance { reused: false });
            }
            // Bytes actually observed: the old valid prefix plus
            // everything the suffix read returned (the file may have
            // grown past the stat in the meantime).
            let observed = (seg.valid_bytes + suffix.len()) as u64;
            seg.valid_bytes += replay_body(&suffix, &mut seg.cells);
            seg.seen_len = observed;
            return Some(SegmentAdvance { reused: false });
        }
    }
    // First sight, shrunk, or header previously foreign: full re-read.
    let text = std::fs::read_to_string(path).ok()?;
    let (cells, valid_bytes) = replay(&text, campaign, spec_digest);
    cursor
        .segments
        .insert(name.to_owned(), SegmentCursor { seen_len: text.len() as u64, valid_bytes, cells });
    Some(SegmentAdvance { reused: false })
}

/// Replays journal `text` for (campaign, spec digest): the completed-cell
/// map plus the byte length of the valid prefix (header + whole lines).
fn replay(text: &str, campaign: &str, spec_digest: &str) -> (BTreeMap<String, SimResult>, usize) {
    let mut completed = BTreeMap::new();
    let mut valid_bytes = 0usize;
    let header_line = text.split_inclusive('\n').next().unwrap_or("");
    let header_ok = header_line.ends_with('\n')
        && Json::parse(header_line.trim_end()).ok().is_some_and(|h| {
            h.get("ccsim_campaign_journal").and_then(Json::as_u64) == Some(JOURNAL_VERSION)
                && h.get("campaign").and_then(Json::as_str) == Some(campaign)
                && h.get("spec").and_then(Json::as_str) == Some(spec_digest)
        });
    if header_ok {
        valid_bytes = header_line.len();
        valid_bytes += replay_body(&text[header_line.len()..], &mut completed);
    }
    (completed, valid_bytes)
}

/// Replays cell lines (no header) from `text` into `into`, returning
/// the byte length of the fully-valid prefix consumed. A torn final
/// line (or any corruption) ends the replay: everything after it will
/// simply be re-simulated.
fn replay_body(text: &str, into: &mut BTreeMap<String, SimResult>) -> usize {
    let mut consumed = 0usize;
    for line in text.split_inclusive('\n') {
        let Some((cell, result)) = parse_cell_line(line.trim_end()) else { break };
        if !line.ends_with('\n') {
            break;
        }
        into.insert(cell, result);
        consumed += line.len();
    }
    consumed
}

fn parse_cell_line(line: &str) -> Option<(String, SimResult)> {
    let v = Json::parse(line).ok()?;
    let cell = v.get("cell")?.as_str()?.to_owned();
    let result = sim_result_from_json(v.get("result")?)?;
    Some((cell, result))
}

/// Serializes every counter of a [`SimResult`] (exact integers, no derived
/// metrics) so the journal can reconstruct it bit-for-bit.
pub fn sim_result_to_json(r: &SimResult) -> Json {
    Json::obj(vec![
        ("workload", Json::str(&r.workload)),
        ("policy", Json::str(&r.policy)),
        ("instructions", Json::int(r.instructions)),
        ("cycles", Json::int(r.cycles)),
        ("l1d", cache_stats_to_json(&r.l1d)),
        ("l2", cache_stats_to_json(&r.l2)),
        ("llc", cache_stats_to_json(&r.llc)),
        ("dram", dram_stats_to_json(&r.dram)),
        ("llc_diag", Json::str(&r.llc_diag)),
    ])
}

/// Inverse of [`sim_result_to_json`]; `None` on any missing field.
pub fn sim_result_from_json(v: &Json) -> Option<SimResult> {
    Some(SimResult {
        workload: v.get("workload")?.as_str()?.to_owned(),
        policy: v.get("policy")?.as_str()?.to_owned(),
        instructions: v.get("instructions")?.as_u64()?,
        cycles: v.get("cycles")?.as_u64()?,
        l1d: cache_stats_from_json(v.get("l1d")?)?,
        l2: cache_stats_from_json(v.get("l2")?)?,
        llc: cache_stats_from_json(v.get("llc")?)?,
        dram: dram_stats_from_json(v.get("dram")?)?,
        llc_diag: v.get("llc_diag")?.as_str()?.to_owned(),
    })
}

fn cache_stats_to_json(s: &CacheStats) -> Json {
    Json::obj(vec![
        ("demand_accesses", Json::int(s.demand_accesses)),
        ("demand_hits", Json::int(s.demand_hits)),
        ("demand_misses", Json::int(s.demand_misses)),
        ("mshr_merges", Json::int(s.mshr_merges)),
        ("writeback_accesses", Json::int(s.writeback_accesses)),
        ("writeback_hits", Json::int(s.writeback_hits)),
        ("fills", Json::int(s.fills)),
        ("evictions", Json::int(s.evictions)),
        ("writebacks_out", Json::int(s.writebacks_out)),
        ("bypasses", Json::int(s.bypasses)),
        ("writeback_bypass_overrides", Json::int(s.writeback_bypass_overrides)),
    ])
}

fn cache_stats_from_json(v: &Json) -> Option<CacheStats> {
    let f = |k: &str| v.get(k)?.as_u64();
    Some(CacheStats {
        demand_accesses: f("demand_accesses")?,
        demand_hits: f("demand_hits")?,
        demand_misses: f("demand_misses")?,
        mshr_merges: f("mshr_merges")?,
        writeback_accesses: f("writeback_accesses")?,
        writeback_hits: f("writeback_hits")?,
        fills: f("fills")?,
        evictions: f("evictions")?,
        writebacks_out: f("writebacks_out")?,
        bypasses: f("bypasses")?,
        // Absent in journals written before the stat existed: zero then.
        writeback_bypass_overrides: f("writeback_bypass_overrides").unwrap_or(0),
    })
}

fn dram_stats_to_json(s: &DramStats) -> Json {
    Json::obj(vec![
        ("reads", Json::int(s.reads)),
        ("writes", Json::int(s.writes)),
        ("row_hits", Json::int(s.row_hits)),
        ("row_empty", Json::int(s.row_empty)),
        ("row_conflicts", Json::int(s.row_conflicts)),
        ("queue_cycles", Json::int(s.queue_cycles)),
    ])
}

fn dram_stats_from_json(v: &Json) -> Option<DramStats> {
    let f = |k: &str| v.get(k)?.as_u64();
    Some(DramStats {
        reads: f("reads")?,
        writes: f("writes")?,
        row_hits: f("row_hits")?,
        row_empty: f("row_empty")?,
        row_conflicts: f("row_conflicts")?,
        queue_cycles: f("queue_cycles")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result(cycles: u64) -> SimResult {
        SimResult {
            workload: "w".into(),
            policy: "lru".into(),
            instructions: 123_456,
            cycles,
            l1d: CacheStats {
                demand_accesses: 9,
                demand_hits: 5,
                demand_misses: 4,
                ..Default::default()
            },
            l2: CacheStats { fills: 7, evictions: 3, ..Default::default() },
            llc: CacheStats { bypasses: 2, writebacks_out: 1, ..Default::default() },
            dram: DramStats {
                reads: 11,
                writes: 6,
                row_hits: 4,
                row_empty: 3,
                row_conflicts: 4,
                queue_cycles: 99,
            },
            llc_diag: "diag: ok".into(),
        }
    }

    fn temp_journal_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ccsim_journal_{}_{tag}.jsonl", std::process::id()))
    }

    #[test]
    fn sim_result_roundtrips_exactly() {
        let r = sample_result(777);
        let back = sim_result_from_json(&sim_result_to_json(&r)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn journal_replays_recorded_cells() {
        let path = temp_journal_path("replay");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open(&path, "camp", "abcd").unwrap();
            assert_eq!(j.resumed(), 0);
            j.record("w|llc_x1|lru", &sample_result(10)).unwrap();
            j.record("w|llc_x1|srrip", &sample_result(20)).unwrap();
        }
        let j = Journal::open(&path, "camp", "abcd").unwrap();
        assert_eq!(j.resumed(), 2);
        assert_eq!(j.completed()["w|llc_x1|lru"], sample_result(10));
        assert_eq!(j.completed()["w|llc_x1|srrip"], sample_result(20));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn peek_is_read_only_and_spec_aware() {
        let path = temp_journal_path("peek");
        let _ = std::fs::remove_file(&path);
        // Peeking a missing journal creates nothing.
        assert!(Journal::peek_completed(&path, "camp", "abcd").is_empty());
        assert!(!path.exists());
        {
            let mut j = Journal::open(&path, "camp", "abcd").unwrap();
            j.record("w|c|lru", &sample_result(5)).unwrap();
        }
        let before = std::fs::read(&path).unwrap();
        let peeked = Journal::peek_completed(&path, "camp", "abcd");
        assert_eq!(peeked.len(), 1);
        assert_eq!(peeked["w|c|lru"], sample_result(5));
        assert!(Journal::peek_completed(&path, "camp", "zzzz").is_empty(), "foreign spec");
        assert_eq!(std::fs::read(&path).unwrap(), before, "peek must not modify the file");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn spec_digest_mismatch_starts_fresh() {
        let path = temp_journal_path("mismatch");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open(&path, "camp", "aaaa").unwrap();
            j.record("w|c|p", &sample_result(1)).unwrap();
        }
        let j = Journal::open(&path, "camp", "bbbb").unwrap();
        assert_eq!(j.resumed(), 0, "a different grid must not reuse cells");
        std::fs::remove_file(&path).unwrap();
    }

    fn temp_journal_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ccsim_journal_dir_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn segments_merge_with_solo_journal_and_count_duplicates() {
        let dir = temp_journal_dir("merge");
        {
            let mut solo = Journal::open(dir.join("journal.jsonl"), "camp", "abcd").unwrap();
            solo.record("w|c|lru", &sample_result(1)).unwrap();
            let mut a = Journal::open_segment(&dir, "worker-a", "camp", "abcd").unwrap();
            a.record("w|c|srrip", &sample_result(2)).unwrap();
            // worker-b re-ran a cell worker-a already finished (lease
            // expiry race): identical results merge cleanly.
            let mut b = Journal::open_segment(&dir, "worker-b", "camp", "abcd").unwrap();
            b.record("w|c|srrip", &sample_result(2)).unwrap();
            b.record("w|c|drrip", &sample_result(3)).unwrap();
        }
        let merged = merge_dir(&dir, "camp", "abcd").unwrap();
        assert_eq!(merged.completed.len(), 3);
        assert_eq!(merged.entries, 4);
        assert_eq!(merged.duplicates, 1);
        assert_eq!(
            merged.segments,
            vec![
                ("journal.jsonl".to_owned(), 1),
                ("journal.worker-a.jsonl".to_owned(), 1),
                ("journal.worker-b.jsonl".to_owned(), 2),
            ]
        );
        assert_eq!(merged.completed["w|c|drrip"], sample_result(3));
        // A foreign spec digest sees none of it.
        assert!(merge_dir(&dir, "camp", "zzzz").unwrap().completed.is_empty());
        // A missing directory is an empty merge, not an error.
        assert!(merge_dir(&dir.join("nope"), "camp", "abcd").unwrap().completed.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn conflicting_segment_results_fail_the_merge_loudly() {
        let dir = temp_journal_dir("conflict");
        {
            let mut a = Journal::open_segment(&dir, "a", "camp", "abcd").unwrap();
            a.record("w|c|lru", &sample_result(1)).unwrap();
            let mut b = Journal::open_segment(&dir, "b", "camp", "abcd").unwrap();
            b.record("w|c|lru", &sample_result(999)).unwrap();
        }
        let err = merge_dir(&dir, "camp", "abcd").unwrap_err();
        assert!(err.contains("conflicting results"), "{err}");
        assert!(err.contains("w|c|lru"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_drops_torn_tail_per_segment_and_keeps_the_rest() {
        // A worker killed mid-append leaves a torn final line in *its*
        // segment only; the merge must recover every fully-written line
        // of every segment.
        let dir = temp_journal_dir("merge_torn");
        {
            let mut a = Journal::open_segment(&dir, "a", "camp", "abcd").unwrap();
            a.record("w|c|lru", &sample_result(1)).unwrap();
            a.record("w|c|srrip", &sample_result(2)).unwrap();
            let mut b = Journal::open_segment(&dir, "b", "camp", "abcd").unwrap();
            b.record("w|c|drrip", &sample_result(3)).unwrap();
        }
        let a_path = Journal::segment_path(&dir, "a");
        let text = std::fs::read_to_string(&a_path).unwrap();
        std::fs::write(&a_path, &text[..text.len() - 25]).unwrap();
        let merged = merge_dir(&dir, "camp", "abcd").unwrap();
        assert_eq!(merged.completed.len(), 2, "torn cell dropped, both others kept");
        assert!(merged.completed.contains_key("w|c|lru"));
        assert!(merged.completed.contains_key("w|c|drrip"));
        assert_eq!(
            merged.segments,
            vec![("journal.a.jsonl".to_owned(), 1), ("journal.b.jsonl".to_owned(), 1)]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cursored_merge_skips_unchanged_segments_and_reads_only_growth() {
        let dir = temp_journal_dir("cursor");
        let mut a = Journal::open_segment(&dir, "a", "camp", "abcd").unwrap();
        a.record("w|c|lru", &sample_result(1)).unwrap();
        let mut b = Journal::open_segment(&dir, "b", "camp", "abcd").unwrap();
        b.record("w|c|srrip", &sample_result(2)).unwrap();

        let mut cursor = MergeCursor::new();
        let first = merge_dir_cached(&dir, "camp", "abcd", &mut cursor).unwrap();
        assert_eq!(first.completed.len(), 2);
        assert_eq!((first.segments_scanned, first.segments_reused), (2, 0), "cold cursor");

        // Nothing changed: both segments served from the cursor.
        let second = merge_dir_cached(&dir, "camp", "abcd", &mut cursor).unwrap();
        assert_eq!(second.completed.len(), 2);
        assert_eq!(second.entries, first.entries);
        assert_eq!(second.segments, first.segments);
        assert_eq!((second.segments_scanned, second.segments_reused), (0, 2));

        // One segment grows: only it is rescanned, and only its suffix.
        a.record("w|c|drrip", &sample_result(3)).unwrap();
        let third = merge_dir_cached(&dir, "camp", "abcd", &mut cursor).unwrap();
        assert_eq!(third.completed.len(), 3);
        assert_eq!((third.segments_scanned, third.segments_reused), (1, 1));
        assert_eq!(third.completed["w|c|drrip"], sample_result(3));

        // The cursored result always matches a cold full merge.
        let cold = merge_dir(&dir, "camp", "abcd").unwrap();
        assert_eq!(cold.completed, third.completed);
        assert_eq!(cold.segments, third.segments);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cursored_merge_handles_torn_growth_truncation_and_new_segments() {
        let dir = temp_journal_dir("cursor_edges");
        let mut a = Journal::open_segment(&dir, "a", "camp", "abcd").unwrap();
        a.record("w|c|lru", &sample_result(1)).unwrap();
        drop(a);
        let a_path = Journal::segment_path(&dir, "a");

        let mut cursor = MergeCursor::new();
        assert_eq!(merge_dir_cached(&dir, "camp", "abcd", &mut cursor).unwrap().entries, 1);

        // A torn append (no trailing newline) is growth, but nothing of
        // it is valid yet.
        let full = std::fs::read_to_string(&a_path).unwrap();
        let cell_line = full.lines().nth(1).unwrap();
        let torn = &cell_line.replace("w|c|lru", "w|c|ship")[..cell_line.len() - 20];
        std::fs::write(&a_path, format!("{full}{torn}")).unwrap();
        let merged = merge_dir_cached(&dir, "camp", "abcd", &mut cursor).unwrap();
        assert_eq!(merged.completed.len(), 1, "torn tail not merged");

        // Completing the line merges it from the suffix alone.
        std::fs::write(&a_path, format!("{full}{}\n", cell_line.replace("w|c|lru", "w|c|ship")))
            .unwrap();
        let merged = merge_dir_cached(&dir, "camp", "abcd", &mut cursor).unwrap();
        assert!(merged.completed.contains_key("w|c|ship"), "{:?}", merged.completed.keys());

        // Truncation back to the original forces a full, correct re-read.
        std::fs::write(&a_path, &full).unwrap();
        let merged = merge_dir_cached(&dir, "camp", "abcd", &mut cursor).unwrap();
        assert_eq!(merged.completed.len(), 1);
        assert!(merged.completed.contains_key("w|c|lru"));

        // A brand-new segment appears mid-polling.
        let mut b = Journal::open_segment(&dir, "b", "camp", "abcd").unwrap();
        b.record("w|c|hawkeye", &sample_result(9)).unwrap();
        drop(b);
        let merged = merge_dir_cached(&dir, "camp", "abcd", &mut cursor).unwrap();
        assert_eq!(merged.completed.len(), 2);

        // A deleted segment disappears from the merge (and the cursor).
        std::fs::remove_file(Journal::segment_path(&dir, "b")).unwrap();
        let merged = merge_dir_cached(&dir, "camp", "abcd", &mut cursor).unwrap();
        assert_eq!(merged.completed.len(), 1);
        assert_eq!(merged.segments.len(), 1);

        // Switching spec through the same cursor resets it safely.
        assert!(merge_dir_cached(&dir, "camp", "zzzz", &mut cursor).unwrap().completed.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_trailing_line_is_dropped() {
        let path = temp_journal_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open(&path, "camp", "cccc").unwrap();
            j.record("w|c|lru", &sample_result(1)).unwrap();
            j.record("w|c|srrip", &sample_result(2)).unwrap();
        }
        // Simulate a kill mid-write: chop the file inside the last line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 25]).unwrap();
        let mut j = Journal::open(&path, "camp", "cccc").unwrap();
        assert_eq!(j.resumed(), 1);
        // The torn tail is truncated and the journal stays appendable...
        j.record("w|c|drrip", &sample_result(3)).unwrap();
        assert_eq!(j.completed().len(), 2);
        drop(j);
        // ...and a later replay sees the record appended after the tear.
        let j = Journal::open(&path, "camp", "cccc").unwrap();
        assert_eq!(j.resumed(), 2);
        assert_eq!(j.completed()["w|c|drrip"], sample_result(3));
        std::fs::remove_file(&path).unwrap();
    }
}
