//! Cross-campaign report diffing.
//!
//! A [`ReportDiff`] compares two campaign `report.json` files over the
//! same grid — typically the same spec run at two code revisions — and
//! surfaces per-cell deltas of the metrics that matter for regression
//! hunting: LLC MPKI, LLC miss ratio and IPC. `ccsim report-diff` is a
//! thin wrapper that prints the table and exits non-zero when any
//! absolute LLC-MPKI delta exceeds a threshold (default 0: byte-level
//! determinism checking).

use ccsim_core::experiment::report::fmt_f;
use ccsim_core::experiment::Table;

use crate::json::Json;

/// Version of the `report-diff --json` output schema.
pub const DIFF_SCHEMA_VERSION: u64 = 1;

/// The comparable metrics of one report cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMetrics {
    /// LLC misses per kilo-instruction.
    pub llc_mpki: f64,
    /// LLC demand miss ratio (1 − hit rate), in [0, 1].
    pub llc_miss_ratio: f64,
    /// Instructions per cycle.
    pub ipc: f64,
}

/// One grid cell present in both reports.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffCell {
    /// `workload|config|policy` identity.
    pub id: String,
    /// Metrics from the first report.
    pub a: CellMetrics,
    /// Metrics from the second report.
    pub b: CellMetrics,
}

impl DiffCell {
    /// `b − a` LLC MPKI.
    pub fn mpki_delta(&self) -> f64 {
        self.b.llc_mpki - self.a.llc_mpki
    }

    /// `b − a` LLC miss ratio, in percentage points.
    pub fn miss_ratio_delta_pp(&self) -> f64 {
        100.0 * (self.b.llc_miss_ratio - self.a.llc_miss_ratio)
    }

    /// Relative IPC change, percent.
    pub fn ipc_delta_percent(&self) -> f64 {
        if self.a.ipc == 0.0 {
            0.0
        } else {
            100.0 * (self.b.ipc / self.a.ipc - 1.0)
        }
    }
}

/// The comparison of two campaign reports over their common grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportDiff {
    /// Campaign name of the first report.
    pub campaign_a: String,
    /// Campaign name of the second report.
    pub campaign_b: String,
    /// Cells present in both reports, in the first report's order.
    pub cells: Vec<DiffCell>,
    /// Cell ids only the first report contains.
    pub only_in_a: Vec<String>,
    /// Cell ids only the second report contains.
    pub only_in_b: Vec<String>,
}

impl ReportDiff {
    /// Parses and compares two `report.json` texts.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first structural problem (not JSON,
    /// wrong schema version, malformed cell).
    pub fn from_json_strs(a_text: &str, b_text: &str) -> Result<ReportDiff, String> {
        let a = parse_report(a_text).map_err(|e| format!("first report: {e}"))?;
        let b = parse_report(b_text).map_err(|e| format!("second report: {e}"))?;
        let mut cells = Vec::new();
        let mut only_in_a = Vec::new();
        for (id, metrics) in &a.cells {
            match b.cells.iter().find(|(bid, _)| bid == id) {
                Some((_, bm)) => cells.push(DiffCell { id: id.clone(), a: *metrics, b: *bm }),
                None => only_in_a.push(id.clone()),
            }
        }
        let only_in_b = b
            .cells
            .iter()
            .filter(|(id, _)| !a.cells.iter().any(|(aid, _)| aid == id))
            .map(|(id, _)| id.clone())
            .collect();
        Ok(ReportDiff {
            campaign_a: a.campaign,
            campaign_b: b.campaign,
            cells,
            only_in_a,
            only_in_b,
        })
    }

    /// `true` when both reports cover exactly the same grid cells.
    pub fn same_grid(&self) -> bool {
        self.only_in_a.is_empty() && self.only_in_b.is_empty()
    }

    /// The largest absolute per-cell LLC-MPKI delta (0 for no cells).
    pub fn max_abs_mpki_delta(&self) -> f64 {
        self.cells.iter().map(|c| c.mpki_delta().abs()).fold(0.0, f64::max)
    }

    /// Cells whose absolute LLC-MPKI delta exceeds `threshold`.
    pub fn cells_over(&self, threshold: f64) -> usize {
        self.cells.iter().filter(|c| c.mpki_delta().abs() > threshold).count()
    }

    /// Machine-readable rendering (`ccsim report-diff --json`): schema
    /// [`DIFF_SCHEMA_VERSION`], one object per common cell with both
    /// sides' metrics and the signed deltas, plus the summary fields CI
    /// dashboards gate on (`max_abs_mpki_delta`, `cells_over_threshold`,
    /// `same_grid`).
    pub fn to_json(&self, threshold: f64) -> Json {
        let metrics = |m: &CellMetrics| {
            Json::obj(vec![
                ("llc_mpki", Json::num(m.llc_mpki)),
                ("llc_miss_ratio", Json::num(m.llc_miss_ratio)),
                ("ipc", Json::num(m.ipc)),
            ])
        };
        let cells = self
            .cells
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("id", Json::str(&c.id)),
                    ("a", metrics(&c.a)),
                    ("b", metrics(&c.b)),
                    (
                        "delta",
                        Json::obj(vec![
                            ("llc_mpki", Json::num(c.mpki_delta())),
                            ("llc_miss_ratio_pp", Json::num(c.miss_ratio_delta_pp())),
                            ("ipc_percent", Json::num(c.ipc_delta_percent())),
                        ]),
                    ),
                ])
            })
            .collect();
        let ids = |v: &[String]| Json::Arr(v.iter().map(Json::str).collect());
        Json::obj(vec![
            ("ccsim_report_diff", Json::int(DIFF_SCHEMA_VERSION)),
            ("campaign_a", Json::str(&self.campaign_a)),
            ("campaign_b", Json::str(&self.campaign_b)),
            ("same_grid", Json::Bool(self.same_grid())),
            ("threshold", Json::num(threshold)),
            ("max_abs_mpki_delta", Json::num(self.max_abs_mpki_delta())),
            ("cells_over_threshold", Json::int(self.cells_over(threshold) as u64)),
            ("cells", Json::Arr(cells)),
            ("only_in_a", ids(&self.only_in_a)),
            ("only_in_b", ids(&self.only_in_b)),
        ])
    }

    /// Per-cell delta table (also the CSV layout of `report-diff`).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            [
                "cell",
                "llc_mpki_a",
                "llc_mpki_b",
                "mpki_delta",
                "miss_%_a",
                "miss_%_b",
                "miss_delta_pp",
                "ipc_delta_%",
            ]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
        );
        for c in &self.cells {
            t.row(vec![
                c.id.clone(),
                fmt_f(c.a.llc_mpki, 3),
                fmt_f(c.b.llc_mpki, 3),
                fmt_f(c.mpki_delta(), 3),
                fmt_f(100.0 * c.a.llc_miss_ratio, 2),
                fmt_f(100.0 * c.b.llc_miss_ratio, 2),
                fmt_f(c.miss_ratio_delta_pp(), 2),
                fmt_f(c.ipc_delta_percent(), 3),
            ]);
        }
        t
    }
}

struct ParsedReport {
    campaign: String,
    cells: Vec<(String, CellMetrics)>,
}

fn parse_report(text: &str) -> Result<ParsedReport, String> {
    let root = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = root
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing \"schema_version\" (not a campaign report?)")?;
    // The diff only reads derived metrics, which every schema since v1
    // carries — accept the whole supported range so reports from older
    // revisions remain comparable.
    if !(crate::report::MIN_REPORT_SCHEMA_VERSION..=crate::report::REPORT_SCHEMA_VERSION)
        .contains(&schema)
    {
        return Err(format!("unsupported report schema version {schema}"));
    }
    let campaign =
        root.get("campaign").and_then(Json::as_str).ok_or("missing \"campaign\" name")?.to_owned();
    let cells = root
        .get("cells")
        .and_then(Json::as_array)
        .ok_or("missing \"cells\" array")?
        .iter()
        .enumerate()
        .map(|(i, cell)| {
            let field = |path: &[&str]| {
                let mut v = cell;
                for key in path {
                    v = v.get(key)?;
                }
                v.as_f64()
            };
            let text = |key: &str| cell.get(key).and_then(Json::as_str);
            let id = format!(
                "{}|{}|{}",
                text("workload").ok_or(format!("cell {i}: missing workload"))?,
                text("config").ok_or(format!("cell {i}: missing config"))?,
                text("policy").ok_or(format!("cell {i}: missing policy"))?,
            );
            let hit_rate =
                field(&["hit_rate", "llc"]).ok_or(format!("cell {i}: missing hit_rate.llc"))?;
            Ok((
                id,
                CellMetrics {
                    llc_mpki: field(&["mpki", "llc"])
                        .ok_or(format!("cell {i}: missing mpki.llc"))?,
                    llc_miss_ratio: 1.0 - hit_rate,
                    ipc: field(&["ipc"]).ok_or(format!("cell {i}: missing ipc"))?,
                },
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(ParsedReport { campaign, cells })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal schema-v1 report with one knob per metric.
    fn report(name: &str, mpki: f64, hit: f64, ipc: f64, extra_cell: bool) -> String {
        let cell = |workload: &str, mpki: f64| {
            format!(
                r#"{{"workload": "{workload}", "config": "llc_x1", "policy": "lru",
                     "ipc": {ipc}, "mpki": {{"l1d": 1.0, "l2": 1.0, "llc": {mpki}}},
                     "hit_rate": {{"l1d": 0.9, "l2": 0.5, "llc": {hit}}},
                     "dram_reach_fraction": 0.1}}"#
            )
        };
        let mut cells = vec![cell("bfs.kron", mpki)];
        if extra_cell {
            cells.push(cell("pr.twitter", mpki));
        }
        format!(
            r#"{{"schema_version": 1, "campaign": "{name}", "spec": {{}},
                 "cells": [{}]}}"#,
            cells.join(",")
        )
    }

    #[test]
    fn identical_reports_have_zero_deltas() {
        let a = report("x", 5.0, 0.4, 1.5, false);
        let d = ReportDiff::from_json_strs(&a, &a).unwrap();
        assert!(d.same_grid());
        assert_eq!(d.cells.len(), 1);
        assert_eq!(d.max_abs_mpki_delta(), 0.0);
        assert_eq!(d.cells_over(0.0), 0);
    }

    #[test]
    fn deltas_are_signed_b_minus_a() {
        let a = report("x", 5.0, 0.4, 1.5, false);
        let b = report("y", 6.5, 0.5, 1.2, false);
        let d = ReportDiff::from_json_strs(&a, &b).unwrap();
        assert_eq!(d.campaign_a, "x");
        assert_eq!(d.campaign_b, "y");
        let c = &d.cells[0];
        assert!((c.mpki_delta() - 1.5).abs() < 1e-12);
        assert!((c.miss_ratio_delta_pp() - -10.0).abs() < 1e-9, "hit 0.4→0.5 is −10pp misses");
        assert!((c.ipc_delta_percent() - -20.0).abs() < 1e-9);
        assert!((d.max_abs_mpki_delta() - 1.5).abs() < 1e-12);
        assert_eq!(d.cells_over(1.0), 1);
        assert_eq!(d.cells_over(2.0), 0);
        let csv = d.table().to_csv();
        assert!(csv.contains("bfs.kron|llc_x1|lru,5.000,6.500,1.500"), "{csv}");
    }

    #[test]
    fn grid_mismatch_is_reported_not_fatal() {
        let a = report("x", 5.0, 0.4, 1.5, false);
        let b = report("x", 5.0, 0.4, 1.5, true);
        let d = ReportDiff::from_json_strs(&a, &b).unwrap();
        assert!(!d.same_grid());
        assert!(d.only_in_a.is_empty());
        assert_eq!(d.only_in_b, ["pr.twitter|llc_x1|lru"]);
    }

    #[test]
    fn json_rendering_carries_summary_and_cell_deltas() {
        let a = report("x", 5.0, 0.4, 1.5, false);
        let b = report("y", 6.5, 0.5, 1.2, true);
        let d = ReportDiff::from_json_strs(&a, &b).unwrap();
        let j = d.to_json(1.0);
        assert_eq!(j.get("ccsim_report_diff").and_then(Json::as_u64), Some(DIFF_SCHEMA_VERSION));
        assert_eq!(j.get("campaign_b").and_then(Json::as_str), Some("y"));
        assert_eq!(j.get("same_grid"), Some(&Json::Bool(false)));
        assert_eq!(j.get("cells_over_threshold").and_then(Json::as_u64), Some(1));
        let cells = j.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 1);
        let delta = cells[0].get("delta").unwrap();
        assert!((delta.get("llc_mpki").unwrap().as_f64().unwrap() - 1.5).abs() < 1e-12);
        assert!((delta.get("ipc_percent").unwrap().as_f64().unwrap() - -20.0).abs() < 1e-9);
        let only_b = j.get("only_in_b").unwrap().as_array().unwrap();
        assert_eq!(only_b.len(), 1);
        // The document is valid JSON and round-trips.
        let text = j.to_pretty();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn malformed_reports_are_rejected_with_context() {
        let good = report("x", 5.0, 0.4, 1.5, false);
        let err = ReportDiff::from_json_strs("{}", &good).unwrap_err();
        assert!(err.contains("first report"), "{err}");
        assert!(err.contains("schema_version"), "{err}");
        let wrong = good.replace("\"schema_version\": 1", "\"schema_version\": 99");
        let err = ReportDiff::from_json_strs(&good, &wrong).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
        assert!(ReportDiff::from_json_strs("not json", &good).is_err());
    }
}
