//! On-disk content-addressed trace cache.
//!
//! Workload traces dominate campaign cost, yet every (policy x config)
//! cell of a grid reuses the same trace. The cache stores each generated
//! trace once under a filename derived from its full identity — workload
//! name, scale, synthesis seed and `CCTR` format version — so traces are
//! shared across cells, campaigns and repeated runs, and a key change
//! (new scale, new seed, format bump) can never alias an old file.
//!
//! Ingested external traces (`trace:<path>` selectors) follow the same
//! discipline with a different identity: the **content digest** of the
//! source file, the resolved source format, the ingest options and the
//! `CCTR` version ([`TraceCache::get_or_ingest`]). A foreign trace is
//! therefore decoded exactly once across cells, campaigns and repeated
//! runs, and editing the source file in place changes the key.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ccsim_ingest::{detect_file, digest_file, ingest_file, IngestOptions};
use ccsim_trace::{read_trace, read_trace_header, write_trace, Trace, TraceReader};
use ccsim_workloads::SuiteScale;

use crate::spec::fnv1a64;

/// Version suffix baked into every cache key; bump when
/// [`ccsim_trace::write_trace`]'s format version changes.
const FORMAT_VERSION: u32 = 1;

/// A content-addressed store of generated workload traces.
#[derive(Debug)]
pub struct TraceCache {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TraceCache {
    /// Opens (creating if needed) a cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(root: impl Into<PathBuf>) -> std::io::Result<TraceCache> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(TraceCache { root, hits: AtomicU64::new(0), misses: AtomicU64::new(0) })
    }

    /// The cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Cache reads served from disk since this handle was opened.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache reads that fell through to generation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The on-disk path for a trace identity.
    pub fn path_for(&self, workload: &str, scale: SuiteScale, seed: u64) -> PathBuf {
        let key = format!("{workload}@{scale}#s{seed}#v{FORMAT_VERSION}");
        let sanitized: String = workload
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '.' || c == '-' { c } else { '_' })
            .collect();
        self.root.join(format!("{sanitized}-{scale}-{:016x}.cctr", fnv1a64(key.as_bytes())))
    }

    /// Returns the cached trace for the identity, or runs `generate`,
    /// stores its result, and returns it. A present-but-corrupt cache file
    /// is regenerated and overwritten. Writes go through a temporary file
    /// and an atomic rename, so a killed campaign never leaves a truncated
    /// trace behind for the resumed run to read.
    ///
    /// # Errors
    ///
    /// Propagates generation errors and cache-write I/O errors.
    pub fn get_or_generate(
        &self,
        workload: &str,
        scale: SuiteScale,
        seed: u64,
        generate: impl FnOnce() -> Result<Trace, String>,
    ) -> Result<Trace, String> {
        let _span = ccsim_obs::metrics().cache_ensure_ns.span();
        let path = self.path_for(workload, scale, seed);
        if let Ok(file) = File::open(&path) {
            match read_trace(BufReader::new(file)) {
                Ok(trace) if trace.name() == workload => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    ccsim_obs::metrics().cache_hits.inc();
                    return Ok(trace);
                }
                _ => {
                    // Corrupt or aliased: fall through and regenerate.
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        ccsim_obs::metrics().cache_misses.inc();
        let trace = generate()?;
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let write = || -> std::io::Result<()> {
            let file = File::create(&tmp)?;
            let mut writer = BufWriter::new(file);
            write_trace(&trace, &mut writer)?;
            std::io::Write::flush(&mut writer)?;
            std::fs::rename(&tmp, &path)
        };
        write().map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("caching trace to {}: {e}", path.display())
        })?;
        Ok(trace)
    }

    /// The on-disk path an ingested conversion of `source` would use:
    /// keyed by the file's content digest, the resolved source format,
    /// the ingest options and the `CCTR` version. Reads (digests) the
    /// whole source file, in bounded memory.
    ///
    /// # Errors
    ///
    /// Returns a message on unreadable or format-undetectable sources.
    pub fn path_for_ingested(
        &self,
        source: &Path,
        opts: &IngestOptions,
    ) -> Result<PathBuf, String> {
        let digest = digest_file(source)
            .map_err(|e| format!("digesting trace file {}: {e}", source.display()))?;
        let format = match opts.format {
            Some(f) => f,
            None => detect_file(source).map_err(|e| format!("{}: {e}", source.display()))?,
        };
        let key = format!("ingest#{digest:016x}#{format}#{}#v{FORMAT_VERSION}", opts.cache_key());
        Ok(self.root.join(format!("ingest-{:016x}.cctr", fnv1a64(key.as_bytes()))))
    }

    /// Ensures a cached conversion of the external trace `source` exists
    /// on disk and returns its path — without materializing the records,
    /// so callers can stream the entry through
    /// [`ccsim_core::simulate_stream`] in O(1) memory. A missing,
    /// truncated, magic-damaged, misnamed or record-corrupt entry is
    /// re-ingested (validation decodes every record in bounded memory,
    /// preserving the poisoned-cache recovery guarantee the old
    /// full-read path provided) with the usual tmp-file + atomic-rename
    /// discipline.
    ///
    /// # Errors
    ///
    /// Returns a message on unreadable sources, undetectable formats,
    /// corrupt source records (strict mode) and cache I/O failures.
    pub fn ensure_ingested(&self, source: &Path, opts: &IngestOptions) -> Result<PathBuf, String> {
        let _span = ccsim_obs::metrics().cache_ensure_ns.span();
        let path = self.path_for_ingested(source, opts)?;
        let entry_matches = || -> bool {
            let Some(header) = valid_entry_header(&path) else {
                return false;
            };
            if opts.name.as_deref().is_some_and(|n| n != header.name) {
                return false;
            }
            // Record-level scan: a flipped byte mid-file must fall
            // through to re-ingest here, not abort every downstream cell
            // at replay time. One sequential pass, one record in memory.
            let Ok(file) = File::open(&path) else {
                return false;
            };
            let Ok(mut reader) = TraceReader::new(BufReader::new(file)) else {
                return false;
            };
            loop {
                match reader.next_record() {
                    Ok(Some(_)) => {}
                    Ok(None) => return true,
                    Err(_) => return false,
                }
            }
        };
        if entry_matches() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            ccsim_obs::metrics().cache_hits.inc();
            return Ok(path);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        ccsim_obs::metrics().cache_misses.inc();
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let convert = || -> Result<(), String> {
            ingest_file(source, &tmp, opts)
                .map_err(|e| format!("ingesting {}: {e}", source.display()))?;
            std::fs::rename(&tmp, &path)
                .map_err(|e| format!("caching ingested trace to {}: {e}", path.display()))
        };
        convert().inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })?;
        Ok(path)
    }

    /// Returns the cached conversion of the external trace `source` as an
    /// in-memory [`Trace`], ingesting it first if needed (see
    /// [`TraceCache::ensure_ingested`]). Campaign cells stream entries
    /// instead; this remains for callers that genuinely need the whole
    /// trace resident.
    ///
    /// # Errors
    ///
    /// As [`TraceCache::ensure_ingested`], plus decode failures on the
    /// cached entry itself.
    pub fn get_or_ingest(&self, source: &Path, opts: &IngestOptions) -> Result<Trace, String> {
        let path = self.ensure_ingested(source, opts)?;
        let file = File::open(&path)
            .map_err(|e| format!("reopening ingested trace {}: {e}", path.display()))?;
        read_trace(BufReader::new(file))
            .map_err(|e| format!("decoding ingested trace {}: {e}", path.display()))
    }

    /// `true` if `path` holds a structurally valid `CCTR` file: good
    /// magic and header, and exactly the length the header promises.
    /// Used by campaign dry-runs to predict cache hits cheaply (the
    /// actual acquisition, [`TraceCache::ensure_ingested`], additionally
    /// scans the records).
    pub fn entry_is_valid(path: &Path) -> bool {
        valid_entry_header(path).is_some()
    }
}

/// Shared structural probe: the parsed header of `path` if its magic,
/// header and exact file length check out; `None` otherwise.
fn valid_entry_header(path: &Path) -> Option<ccsim_trace::TraceHeader> {
    let file = File::open(path).ok()?;
    let meta = file.metadata().ok()?;
    let header = read_trace_header(BufReader::new(file)).ok()?;
    (header.expected_file_len() == meta.len()).then_some(header)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_trace::synth::{PatternGen, RandomAccess};
    use ccsim_trace::TraceBuffer;

    fn sample(name: &str) -> Trace {
        let mut b = TraceBuffer::new(name);
        RandomAccess::new(0, 1 << 10, 64, 500).emit(&mut b);
        b.finish()
    }

    fn temp_cache(tag: &str) -> TraceCache {
        let dir =
            std::env::temp_dir().join(format!("ccsim_cache_test_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TraceCache::new(dir).unwrap()
    }

    #[test]
    fn second_read_is_a_hit_and_byte_identical() {
        let cache = temp_cache("hit");
        let first = cache.get_or_generate("w", SuiteScale::Quick, 0, || Ok(sample("w"))).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let second = cache
            .get_or_generate("w", SuiteScale::Quick, 0, || panic!("must not regenerate on a hit"))
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(first, second);
        std::fs::remove_dir_all(cache.root()).unwrap();
    }

    #[test]
    fn keys_separate_scale_and_seed() {
        let cache = temp_cache("keys");
        let p1 = cache.path_for("w", SuiteScale::Quick, 0);
        assert_ne!(p1, cache.path_for("w", SuiteScale::Full, 0));
        assert_ne!(p1, cache.path_for("w", SuiteScale::Quick, 1));
        assert_ne!(p1, cache.path_for("w2", SuiteScale::Quick, 0));
        assert!(p1.file_name().unwrap().to_str().unwrap().ends_with(".cctr"));
        std::fs::remove_dir_all(cache.root()).unwrap();
    }

    #[test]
    fn corrupt_cache_file_is_regenerated() {
        let cache = temp_cache("corrupt");
        let path = cache.path_for("w", SuiteScale::Quick, 0);
        cache.get_or_generate("w", SuiteScale::Quick, 0, || Ok(sample("w"))).unwrap();
        std::fs::write(&path, b"CCTRgarbage").unwrap();
        let t = cache.get_or_generate("w", SuiteScale::Quick, 0, || Ok(sample("w"))).unwrap();
        assert_eq!(t, sample("w"));
        assert_eq!(cache.misses(), 2);
        // The corrupt file was replaced with a valid one.
        let reread =
            cache.get_or_generate("w", SuiteScale::Quick, 0, || panic!("cached now")).unwrap();
        assert_eq!(reread, t);
        std::fs::remove_dir_all(cache.root()).unwrap();
    }

    #[test]
    fn generation_errors_propagate_and_leave_no_file() {
        let cache = temp_cache("err");
        let err =
            cache.get_or_generate("w", SuiteScale::Quick, 0, || Err("boom".into())).unwrap_err();
        assert_eq!(err, "boom");
        assert!(!cache.path_for("w", SuiteScale::Quick, 0).exists());
        std::fs::remove_dir_all(cache.root()).unwrap();
    }

    fn write_champsim_sample(path: &Path, records: u64) {
        use ccsim_ingest::champsim::{ChampSimRecord, ChampSimWriter};
        let mut w = ChampSimWriter::new(std::fs::File::create(path).unwrap());
        for i in 0..records {
            w.write(&ChampSimRecord::nonmem(0x400 + 4 * i)).unwrap();
            w.write(&ChampSimRecord::load(0x404 + 4 * i, 0x1000 + 64 * i)).unwrap();
        }
    }

    #[test]
    fn ingested_trace_is_converted_once_then_served_from_disk() {
        let cache = temp_cache("ingest");
        let source = cache.root().join("sample.champsim");
        write_champsim_sample(&source, 10);
        let opts = IngestOptions { name: Some("ext".into()), ..Default::default() };

        let first = cache.get_or_ingest(&source, &opts).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        assert_eq!(first.name(), "ext");
        assert_eq!(first.len(), 10);
        assert_eq!(first.instructions(), 20);

        let second = cache.get_or_ingest(&source, &opts).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1), "second read is a hit");
        assert_eq!(first, second);

        // The cache entry passes the structural validity probe.
        assert!(TraceCache::entry_is_valid(&cache.path_for_ingested(&source, &opts).unwrap()));
        std::fs::remove_dir_all(cache.root()).unwrap();
    }

    #[test]
    fn ingest_key_tracks_content_options_and_format() {
        let cache = temp_cache("ingest_keys");
        let source = cache.root().join("a.champsim");
        write_champsim_sample(&source, 4);
        let opts = IngestOptions::default();
        let p1 = cache.path_for_ingested(&source, &opts).unwrap();

        let named = IngestOptions { name: Some("other".into()), ..Default::default() };
        assert_ne!(p1, cache.path_for_ingested(&source, &named).unwrap());

        // Editing the file in place changes the digest, hence the key.
        write_champsim_sample(&source, 5);
        assert_ne!(p1, cache.path_for_ingested(&source, &opts).unwrap());
        std::fs::remove_dir_all(cache.root()).unwrap();
    }

    #[test]
    fn record_corrupt_ingest_entry_is_detected_and_reingested() {
        let cache = temp_cache("ingest_bitflip");
        let source = cache.root().join("sample.champsim");
        write_champsim_sample(&source, 8);
        let opts = IngestOptions { name: Some("ext".into()), ..Default::default() };
        let good = cache.get_or_ingest(&source, &opts).unwrap();
        let entry = cache.path_for_ingested(&source, &opts).unwrap();

        // Flip one record's access-kind byte mid-file: header and length
        // stay intact, so only the record scan can catch it — and it
        // must heal the entry rather than poison downstream streaming
        // cells.
        let mut bytes = std::fs::read(&entry).unwrap();
        let kind_off = bytes.len() - 3 * 20 + 17; // third-from-last record
        bytes[kind_off] = 9;
        std::fs::write(&entry, &bytes).unwrap();
        assert!(TraceCache::entry_is_valid(&entry), "header probe alone cannot see this");

        let path = cache.ensure_ingested(&source, &opts).unwrap();
        assert_eq!(cache.misses(), 2, "record corruption fell through to re-ingest");
        let healed = read_trace(BufReader::new(File::open(path).unwrap())).unwrap();
        assert_eq!(healed, good, "entry repaired in place");
        std::fs::remove_dir_all(cache.root()).unwrap();
    }

    #[test]
    fn truncated_ingest_entry_is_detected_and_reingested() {
        let cache = temp_cache("ingest_trunc");
        let source = cache.root().join("sample.champsim");
        write_champsim_sample(&source, 8);
        let opts = IngestOptions { name: Some("ext".into()), ..Default::default() };
        let good = cache.get_or_ingest(&source, &opts).unwrap();
        let entry = cache.path_for_ingested(&source, &opts).unwrap();

        // Truncate the cached CCTR mid-records: the magic/length check
        // must reject it and the next read must regenerate, not poison
        // downstream cells.
        let bytes = std::fs::read(&entry).unwrap();
        std::fs::write(&entry, &bytes[..bytes.len() - 7]).unwrap();
        assert!(!TraceCache::entry_is_valid(&entry));
        let recovered = cache.get_or_ingest(&source, &opts).unwrap();
        assert_eq!(recovered, good);
        assert_eq!(cache.misses(), 2, "truncated entry fell through to re-ingest");
        assert!(TraceCache::entry_is_valid(&entry), "entry was repaired in place");
        std::fs::remove_dir_all(cache.root()).unwrap();
    }
}
