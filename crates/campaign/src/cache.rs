//! On-disk content-addressed trace cache.
//!
//! Workload traces dominate campaign cost, yet every (policy x config)
//! cell of a grid reuses the same trace. The cache stores each generated
//! trace once under a filename derived from its full identity — workload
//! name, scale, synthesis seed and `CCTR` format version — so traces are
//! shared across cells, campaigns and repeated runs, and a key change
//! (new scale, new seed, format bump) can never alias an old file.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ccsim_trace::{read_trace, write_trace, Trace};
use ccsim_workloads::SuiteScale;

use crate::spec::fnv1a64;

/// Version suffix baked into every cache key; bump when
/// [`ccsim_trace::write_trace`]'s format version changes.
const FORMAT_VERSION: u32 = 1;

/// A content-addressed store of generated workload traces.
#[derive(Debug)]
pub struct TraceCache {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TraceCache {
    /// Opens (creating if needed) a cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(root: impl Into<PathBuf>) -> std::io::Result<TraceCache> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(TraceCache { root, hits: AtomicU64::new(0), misses: AtomicU64::new(0) })
    }

    /// The cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Cache reads served from disk since this handle was opened.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache reads that fell through to generation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The on-disk path for a trace identity.
    pub fn path_for(&self, workload: &str, scale: SuiteScale, seed: u64) -> PathBuf {
        let key = format!("{workload}@{scale}#s{seed}#v{FORMAT_VERSION}");
        let sanitized: String = workload
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '.' || c == '-' { c } else { '_' })
            .collect();
        self.root.join(format!("{sanitized}-{scale}-{:016x}.cctr", fnv1a64(key.as_bytes())))
    }

    /// Returns the cached trace for the identity, or runs `generate`,
    /// stores its result, and returns it. A present-but-corrupt cache file
    /// is regenerated and overwritten. Writes go through a temporary file
    /// and an atomic rename, so a killed campaign never leaves a truncated
    /// trace behind for the resumed run to read.
    ///
    /// # Errors
    ///
    /// Propagates generation errors and cache-write I/O errors.
    pub fn get_or_generate(
        &self,
        workload: &str,
        scale: SuiteScale,
        seed: u64,
        generate: impl FnOnce() -> Result<Trace, String>,
    ) -> Result<Trace, String> {
        let path = self.path_for(workload, scale, seed);
        if let Ok(file) = File::open(&path) {
            match read_trace(BufReader::new(file)) {
                Ok(trace) if trace.name() == workload => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(trace);
                }
                _ => {
                    // Corrupt or aliased: fall through and regenerate.
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let trace = generate()?;
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let write = || -> std::io::Result<()> {
            let file = File::create(&tmp)?;
            let mut writer = BufWriter::new(file);
            write_trace(&trace, &mut writer)?;
            std::io::Write::flush(&mut writer)?;
            std::fs::rename(&tmp, &path)
        };
        write().map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("caching trace to {}: {e}", path.display())
        })?;
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_trace::synth::{PatternGen, RandomAccess};
    use ccsim_trace::TraceBuffer;

    fn sample(name: &str) -> Trace {
        let mut b = TraceBuffer::new(name);
        RandomAccess::new(0, 1 << 10, 64, 500).emit(&mut b);
        b.finish()
    }

    fn temp_cache(tag: &str) -> TraceCache {
        let dir =
            std::env::temp_dir().join(format!("ccsim_cache_test_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TraceCache::new(dir).unwrap()
    }

    #[test]
    fn second_read_is_a_hit_and_byte_identical() {
        let cache = temp_cache("hit");
        let first = cache.get_or_generate("w", SuiteScale::Quick, 0, || Ok(sample("w"))).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let second = cache
            .get_or_generate("w", SuiteScale::Quick, 0, || panic!("must not regenerate on a hit"))
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(first, second);
        std::fs::remove_dir_all(cache.root()).unwrap();
    }

    #[test]
    fn keys_separate_scale_and_seed() {
        let cache = temp_cache("keys");
        let p1 = cache.path_for("w", SuiteScale::Quick, 0);
        assert_ne!(p1, cache.path_for("w", SuiteScale::Full, 0));
        assert_ne!(p1, cache.path_for("w", SuiteScale::Quick, 1));
        assert_ne!(p1, cache.path_for("w2", SuiteScale::Quick, 0));
        assert!(p1.file_name().unwrap().to_str().unwrap().ends_with(".cctr"));
        std::fs::remove_dir_all(cache.root()).unwrap();
    }

    #[test]
    fn corrupt_cache_file_is_regenerated() {
        let cache = temp_cache("corrupt");
        let path = cache.path_for("w", SuiteScale::Quick, 0);
        cache.get_or_generate("w", SuiteScale::Quick, 0, || Ok(sample("w"))).unwrap();
        std::fs::write(&path, b"CCTRgarbage").unwrap();
        let t = cache.get_or_generate("w", SuiteScale::Quick, 0, || Ok(sample("w"))).unwrap();
        assert_eq!(t, sample("w"));
        assert_eq!(cache.misses(), 2);
        // The corrupt file was replaced with a valid one.
        let reread =
            cache.get_or_generate("w", SuiteScale::Quick, 0, || panic!("cached now")).unwrap();
        assert_eq!(reread, t);
        std::fs::remove_dir_all(cache.root()).unwrap();
    }

    #[test]
    fn generation_errors_propagate_and_leave_no_file() {
        let cache = temp_cache("err");
        let err =
            cache.get_or_generate("w", SuiteScale::Quick, 0, || Err("boom".into())).unwrap_err();
        assert_eq!(err, "boom");
        assert!(!cache.path_for("w", SuiteScale::Quick, 0).exists());
        std::fs::remove_dir_all(cache.root()).unwrap();
    }
}
