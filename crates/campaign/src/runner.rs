//! The campaign engine: grid expansion, cached trace acquisition,
//! work-stealing execution and journaled checkpointing.

use std::path::PathBuf;

use ccsim_core::experiment::run_jobs;
use ccsim_core::{simulate, SimResult};
use ccsim_policies::PolicyKind;
use ccsim_workloads::build_workload_seeded;

use crate::cache::TraceCache;
use crate::journal::Journal;
use crate::report::{CampaignReport, RawCell};
use crate::spec::CampaignSpec;

/// A configured, runnable campaign.
///
/// Traces are acquired per workload (via the [`TraceCache`] when one is
/// attached, regenerated otherwise) and dropped as soon as the workload's
/// cells finish, so at most one trace is alive at a time — the memory
/// profile of the old streaming figure binaries. Within a workload, all
/// pending (policy x config) cells run in parallel on the work-stealing
/// executor ([`run_jobs`]).
///
/// # Examples
///
/// ```no_run
/// use ccsim_campaign::{Campaign, CampaignSpec};
///
/// let spec = CampaignSpec::from_json_str(
///     r#"{"name": "demo", "workloads": ["xsbench.small"],
///         "policies": ["lru", "srrip"], "base_config": "tiny"}"#,
/// ).unwrap();
/// let outcome = Campaign::new(spec).threads(4).run().unwrap();
/// println!("{}", outcome.report.cells_table().render());
/// ```
#[derive(Debug)]
pub struct Campaign {
    spec: CampaignSpec,
    threads: usize,
    cache: Option<TraceCache>,
    journal_path: Option<PathBuf>,
    verbose: bool,
}

/// What a campaign run produced, beyond the report itself.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The deterministic report.
    pub report: CampaignReport,
    /// Total grid cells.
    pub cells_total: usize,
    /// Cells replayed from the journal instead of simulated.
    pub cells_resumed: usize,
    /// Trace-cache reads served from disk (0 without a cache).
    pub cache_hits: u64,
    /// Trace-cache misses that triggered generation (0 without a cache).
    pub cache_misses: u64,
}

impl Campaign {
    /// Wraps a spec with default execution settings: one worker thread,
    /// no trace cache, no journal, quiet.
    pub fn new(spec: CampaignSpec) -> Campaign {
        Campaign { spec, threads: 1, cache: None, journal_path: None, verbose: false }
    }

    /// The spec this campaign will run.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Campaign {
        self.threads = threads.max(1);
        self
    }

    /// Attaches an on-disk trace cache.
    pub fn cache(mut self, cache: TraceCache) -> Campaign {
        self.cache = Some(cache);
        self
    }

    /// Attaches a checkpoint journal at `path`; an existing journal for
    /// the same spec is resumed.
    pub fn journal(mut self, path: impl Into<PathBuf>) -> Campaign {
        self.journal_path = Some(path.into());
        self
    }

    /// Enables per-workload progress lines on stderr.
    pub fn verbose(mut self, verbose: bool) -> Campaign {
        self.verbose = verbose;
        self
    }

    /// Runs every pending cell of the grid and assembles the report.
    ///
    /// # Errors
    ///
    /// Returns a message on invalid workload selectors, trace generation
    /// failures, or cache/journal I/O errors.
    pub fn run(self) -> Result<CampaignOutcome, String> {
        let workloads = self.spec.expand_workloads()?;
        let configs = self.spec.configs();
        let mut journal = match &self.journal_path {
            Some(path) => Some(
                Journal::open(path, &self.spec.name, &self.spec.digest())
                    .map_err(|e| format!("opening journal {}: {e}", path.display()))?,
            ),
            None => None,
        };

        let mut raw: Vec<RawCell> = Vec::new();
        let mut cells_resumed = 0usize;
        for (wi, workload) in workloads.iter().enumerate() {
            // The workload's cells in grid order: config-major, policy-minor.
            let cells: Vec<(usize, PolicyKind, String)> = configs
                .iter()
                .enumerate()
                .flat_map(|(ci, (label, _))| {
                    self.spec.policies.iter().map(move |&policy| {
                        (ci, policy, format!("{workload}|{label}|{}", policy.name()))
                    })
                })
                .collect();
            let pending: Vec<&(usize, PolicyKind, String)> = cells
                .iter()
                .filter(|(_, _, id)| {
                    !journal.as_ref().is_some_and(|j| j.completed().contains_key(id))
                })
                .collect();
            cells_resumed += cells.len() - pending.len();

            let mut fresh: Vec<(String, SimResult)> = Vec::new();
            if !pending.is_empty() {
                // Acquire the trace only when at least one cell needs it:
                // a fully-journaled workload costs no generation at all.
                let trace = match &self.cache {
                    Some(cache) => {
                        cache.get_or_generate(workload, self.spec.scale, self.spec.seed, || {
                            build_workload_seeded(workload, self.spec.scale, self.spec.seed)
                        })?
                    }
                    None => build_workload_seeded(workload, self.spec.scale, self.spec.seed)?,
                };
                let results = run_jobs(pending.len(), self.threads, |i| {
                    let (ci, policy, _) = pending[i];
                    simulate(&trace, &configs[*ci].1, *policy)
                });
                if self.verbose {
                    eprintln!(
                        "[{}/{}] {:<16} {} records, {} cells simulated",
                        wi + 1,
                        workloads.len(),
                        workload,
                        trace.len(),
                        pending.len()
                    );
                }
                for ((_, _, cell_id), result) in pending.iter().zip(results) {
                    if let Some(j) = journal.as_mut() {
                        j.record(cell_id, &result).map_err(|e| format!("writing journal: {e}"))?;
                    }
                    fresh.push((cell_id.clone(), result));
                }
            } else if self.verbose {
                eprintln!("[{}/{}] {:<16} resumed from journal", wi + 1, workloads.len(), workload);
            }

            for (ci, _, cell_id) in &cells {
                let result = fresh
                    .iter()
                    .find(|(id, _)| id == cell_id)
                    .map(|(_, r)| r.clone())
                    .unwrap_or_else(|| {
                        journal.as_ref().expect("non-fresh cells come from the journal").completed()
                            [cell_id]
                            .clone()
                    });
                raw.push(RawCell {
                    config: configs[*ci].0.clone(),
                    llc_scale: self.spec.llc_scales[*ci],
                    result,
                });
            }
        }

        let cells_total = workloads.len() * configs.len() * self.spec.policies.len();
        Ok(CampaignOutcome {
            report: CampaignReport::build(&self.spec, raw),
            cells_total,
            cells_resumed,
            cache_hits: self.cache.as_ref().map_or(0, TraceCache::hits),
            cache_misses: self.cache.as_ref().map_or(0, TraceCache::misses),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::from_json_str(
            r#"{"name": "unit", "base_config": "tiny",
                "workloads": ["xsbench.small"],
                "policies": ["lru", "srrip"], "llc_scales": [1, 2]}"#,
        )
        .unwrap()
    }

    #[test]
    fn grid_covers_workloads_times_policies_times_configs() {
        let outcome = Campaign::new(tiny_spec()).threads(4).run().unwrap();
        assert_eq!(outcome.cells_total, 4);
        assert_eq!(outcome.report.cells.len(), 4);
        assert_eq!(outcome.cells_resumed, 0);
        assert_eq!(outcome.cache_hits + outcome.cache_misses, 0);
        // Spec order: config-major within the workload, policy-minor.
        let ids: Vec<String> = outcome
            .report
            .cells
            .iter()
            .map(|c| format!("{}|{}|{}", c.workload, c.config, c.policy))
            .collect();
        assert_eq!(
            ids,
            [
                "xsbench.small|llc_x1|lru",
                "xsbench.small|llc_x1|srrip",
                "xsbench.small|llc_x2|lru",
                "xsbench.small|llc_x2|srrip"
            ]
        );
    }

    #[test]
    fn parallel_run_equals_serial_run() {
        let serial = Campaign::new(tiny_spec()).threads(1).run().unwrap();
        let parallel = Campaign::new(tiny_spec()).threads(8).run().unwrap();
        assert_eq!(serial.report, parallel.report);
    }
}
