//! The campaign engine: grid expansion, cached trace acquisition,
//! work-stealing execution and journaled checkpointing.

use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

use ccsim_core::experiment::run_jobs;
use ccsim_core::{
    simulate, simulate_grid, simulate_grid_stream, simulate_stream, SimConfig, SimResult,
};
use ccsim_ingest::{ingest_file, IngestOptions};
use ccsim_policies::PolicyKind;
use ccsim_trace::{read_trace_header, Trace, TraceReader};
use ccsim_workloads::{build_workload_seeded, SuiteScale};

use crate::cache::TraceCache;
use crate::journal::Journal;
use crate::report::{CampaignReport, RawCell};
use crate::spec::CampaignSpec;

/// The ingest options every `trace:` selector resolves with: strict
/// decoding, auto-detected format, the full selector as the workload
/// name (so cells, journals and reports all key consistently).
fn ingest_options_for(selector: &str) -> IngestOptions {
    IngestOptions { format: None, lossy: false, name: Some(selector.to_owned()) }
}

/// The acquired trace of one workload, ready to simulate cells against.
///
/// Synthetic workloads are generated (or cache-read) into memory — they
/// are bounded by construction. External `trace:` selectors stay **on
/// disk**: each cell streams the converted `CCTR` file through
/// [`simulate_stream`], so a multi-gigabyte ingested trace never
/// materializes no matter how many (policy × config) cells replay it.
///
/// This is the workload-band granularity the campaign runner and the
/// distributed worker (`ccsim-dist`) build on: acquire a workload once
/// via [`Campaign::acquire`], then run all its pending (config × policy)
/// cells in one pass with [`AcquiredTrace::simulate_cells`] — each cell
/// is still journaled individually, so kill/resume and lease semantics
/// are per cell. [`AcquiredTrace::simulate_cell`] remains as the
/// per-cell escape hatch (`ccsim campaign --per-cell`).
///
/// The internals stay private: one-shot conversions delete their file
/// when the handle drops, a contract callers must not be able to point
/// at arbitrary paths.
#[derive(Debug)]
pub struct AcquiredTrace(Acquired);

#[derive(Debug)]
enum Acquired {
    /// Resident trace, replayed with [`simulate`].
    InMemory(Trace),
    /// On-disk `CCTR` file, streamed per cell. `temp` marks a one-shot
    /// conversion (no cache attached) deleted when the handle drops.
    Streamed { path: PathBuf, records: u64, temp: bool },
}

impl AcquiredTrace {
    /// Memory-access records per replay (for progress lines).
    pub fn records(&self) -> u64 {
        match &self.0 {
            Acquired::InMemory(trace) => trace.len() as u64,
            Acquired::Streamed { records, .. } => *records,
        }
    }

    /// `true` when cells stream from disk instead of replaying memory.
    pub fn is_streamed(&self) -> bool {
        matches!(self.0, Acquired::Streamed { .. })
    }

    /// Runs one grid cell over this trace.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O or decode failures of streamed traces.
    pub fn simulate_cell(
        &self,
        config: &SimConfig,
        policy: PolicyKind,
    ) -> Result<SimResult, String> {
        match &self.0 {
            Acquired::InMemory(trace) => Ok(simulate(trace, config, policy)),
            Acquired::Streamed { path, .. } => {
                let file = File::open(path)
                    .map_err(|e| format!("opening trace {}: {e}", path.display()))?;
                let reader = TraceReader::new(BufReader::new(file))
                    .map_err(|e| format!("decoding trace {}: {e}", path.display()))?;
                simulate_stream(reader, config, policy)
                    .map_err(|e| format!("streaming trace {}: {e}", path.display()))
            }
        }
    }

    /// Runs a whole band of grid cells over this trace in one pass per
    /// shard: the cells are split into `min(threads, cells)` shards, and
    /// each shard replays the trace **once**, advancing all its cells in
    /// lockstep ([`ccsim_core::GridReplay`]) — a streamed multi-gigabyte
    /// trace is read and decoded `threads` times instead of once per
    /// cell. Cells are ordered by descending LLC capacity (the dominant
    /// cost proxy — a scaled-up LLC means proportionally more tag state
    /// and victim work) and dealt round-robin across shards, so one
    /// shard never inherits all the giant-LLC cells of a heterogeneous
    /// band. Results come back in `cells` order and are bit-identical to
    /// [`AcquiredTrace::simulate_cell`] per cell (each cell's engine is
    /// independent, so shard assignment never affects results).
    ///
    /// `chunk_records` is the lockstep chunk length per shard; `0`
    /// autotunes it against the shard's combined tag-state footprint
    /// ([`ccsim_core::autotune_chunk_records`]).
    ///
    /// # Errors
    ///
    /// Returns a message on I/O or decode failures of streamed traces
    /// (the whole band fails; nothing partial is returned).
    pub fn simulate_cells(
        &self,
        cells: &[(SimConfig, PolicyKind)],
        threads: usize,
        chunk_records: usize,
    ) -> Result<Vec<SimResult>, String> {
        if cells.is_empty() {
            return Ok(Vec::new());
        }
        let shards = threads.clamp(1, cells.len());
        let mut order: Vec<usize> = (0..cells.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(cells[i].0.llc.capacity_bytes()));
        let assignment: Vec<Vec<usize>> =
            (0..shards).map(|s| order[s..].iter().step_by(shards).copied().collect()).collect();
        let shard_results = run_jobs(shards, shards, |s| {
            let shard: Vec<(SimConfig, PolicyKind)> =
                assignment[s].iter().map(|&i| cells[i]).collect();
            match &self.0 {
                Acquired::InMemory(trace) => Ok(simulate_grid(trace, &shard, chunk_records)),
                Acquired::Streamed { path, .. } => {
                    let file = File::open(path)
                        .map_err(|e| format!("opening trace {}: {e}", path.display()))?;
                    let reader = TraceReader::new(BufReader::new(file))
                        .map_err(|e| format!("decoding trace {}: {e}", path.display()))?;
                    simulate_grid_stream(reader, &shard, chunk_records)
                        .map_err(|e| format!("streaming trace {}: {e}", path.display()))
                }
            }
        });
        // Scatter shard results back into `cells` order.
        let mut results: Vec<Option<SimResult>> = (0..cells.len()).map(|_| None).collect();
        for (indices, shard) in assignment.iter().zip(shard_results) {
            for (&cell, result) in indices.iter().zip(shard?) {
                results[cell] = Some(result);
            }
        }
        Ok(results.into_iter().map(|r| r.expect("every cell lands in exactly one shard")).collect())
    }

    /// Trace passes [`AcquiredTrace::simulate_cells`] makes for a band
    /// of `cells` at the given parallelism (for progress lines).
    pub fn passes_for(&self, cells: usize, threads: usize) -> usize {
        threads.clamp(1, cells.max(1))
    }
}

impl Drop for AcquiredTrace {
    fn drop(&mut self) {
        if let Acquired::Streamed { path, temp: true, .. } = &self.0 {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Probes the header of a `CCTR` file for its record count.
fn cctr_record_count(path: &Path) -> Result<u64, String> {
    let file = File::open(path).map_err(|e| format!("opening {}: {e}", path.display()))?;
    read_trace_header(BufReader::new(file))
        .map(|h| h.count)
        .map_err(|e| format!("reading header of {}: {e}", path.display()))
}

/// Acquires the trace for one workload selector: external `trace:` files
/// go through the ingest pipeline onto disk (the trace cache when one is
/// attached, a temporary file otherwise) and are streamed per cell;
/// synthetic workloads come from the per-name builders (cached when a
/// cache is attached).
fn acquire_trace(
    cache: Option<&TraceCache>,
    workload: &str,
    scale: SuiteScale,
    seed: u64,
) -> Result<AcquiredTrace, String> {
    if let Some(source) = workload.strip_prefix("trace:") {
        let opts = ingest_options_for(workload);
        let (path, temp) = match cache {
            Some(cache) => (cache.ensure_ingested(Path::new(source), &opts)?, false),
            None => {
                // One-shot conversion: still streamed (bounded memory),
                // just not kept. pid + a process-wide counter keep the
                // name unique even across concurrent campaigns in one
                // process replaying the same selector.
                static TEMP_SEQ: std::sync::atomic::AtomicU64 =
                    std::sync::atomic::AtomicU64::new(0);
                let tmp = std::env::temp_dir().join(format!(
                    "ccsim-stream-{}-{}-{:016x}.cctr",
                    std::process::id(),
                    TEMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                    crate::spec::fnv1a64(workload.as_bytes()),
                ));
                ingest_file(Path::new(source), &tmp, &opts)
                    .map_err(|e| format!("ingesting {source}: {e}"))?;
                (tmp, true)
            }
        };
        let records = cctr_record_count(&path)?;
        return Ok(AcquiredTrace(Acquired::Streamed { path, records, temp }));
    }
    let trace = match cache {
        Some(cache) => cache.get_or_generate(workload, scale, seed, || {
            build_workload_seeded(workload, scale, seed)
        })?,
        None => build_workload_seeded(workload, scale, seed)?,
    };
    Ok(AcquiredTrace(Acquired::InMemory(trace)))
}

/// Accounts one simulated workload band in the global metric catalog:
/// band/cell/record counters, the band wall-clock histogram, and the
/// per-cell wall estimate (band ÷ cells). Shared by [`Campaign::run`]
/// and the distributed worker loop so solo and dist runs manifest the
/// same metrics.
pub fn record_band_metrics(cells: u64, records_simulated: u64, band_ns: u64) {
    let m = ccsim_obs::metrics();
    m.campaign_bands.inc();
    m.campaign_cells.add(cells);
    m.campaign_records.add(records_simulated);
    m.campaign_band_sim_ns.record(band_ns);
    if let Some(per_cell) = band_ns.checked_div(cells) {
        m.campaign_cell_sim_ns.record(per_cell);
    }
}

/// A configured, runnable campaign.
///
/// Traces are acquired per workload (via the [`TraceCache`] when one is
/// attached, regenerated otherwise) and dropped as soon as the workload's
/// cells finish, so at most one trace is alive at a time — the memory
/// profile of the old streaming figure binaries. Within a workload, all
/// pending (policy x config) cells advance in lockstep through one pass
/// over the trace per thread shard ([`AcquiredTrace::simulate_cells`]);
/// [`Campaign::per_cell`] falls back to one independent pass per cell on
/// the work-stealing executor ([`run_jobs`]). The two paths produce
/// bit-identical reports.
///
/// # Examples
///
/// ```no_run
/// use ccsim_campaign::{Campaign, CampaignSpec};
///
/// let spec = CampaignSpec::from_json_str(
///     r#"{"name": "demo", "workloads": ["xsbench.small"],
///         "policies": ["lru", "srrip"], "base_config": "tiny"}"#,
/// ).unwrap();
/// let outcome = Campaign::new(spec).threads(4).run().unwrap();
/// println!("{}", outcome.report.cells_table().render());
/// ```
#[derive(Debug)]
pub struct Campaign {
    spec: CampaignSpec,
    threads: usize,
    cache: Option<TraceCache>,
    journal_path: Option<PathBuf>,
    obs_dir: Option<PathBuf>,
    leases: std::collections::BTreeMap<String, LeaseView>,
    extra_completed: std::collections::BTreeSet<String>,
    verbose: bool,
    per_cell: bool,
    chunk_records: usize,
}

/// A cell lease as seen by [`Campaign::plan`] — who holds it and whether
/// the hold has outlived its TTL. Produced by `ccsim-dist`'s lease
/// scanner and overlaid on dry-run predictions via [`Campaign::leases`];
/// the campaign crate itself never reads or writes lease files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseView {
    /// Worker id holding the lease.
    pub worker: String,
    /// Lease epoch (bumped on every reclaim of the cell).
    pub epoch: u64,
    /// The lease outlived its TTL: the holder is presumed dead and the
    /// cell reclaimable.
    pub stale: bool,
}

/// The predicted fate of one grid cell, as reported by
/// [`Campaign::plan`] (the engine behind `ccsim campaign --dry-run`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// Already completed in the journal — a run replays it for free.
    Journaled,
    /// Pending, and its workload's trace is a valid cache entry — a run
    /// simulates it without generating or ingesting anything.
    CachedTrace,
    /// Pending, and its workload's trace must first be generated (or
    /// ingested, for `trace:` selectors).
    NeedsTrace,
    /// A `trace:` selector whose source file does not exist — the run
    /// would fail at this workload.
    MissingSource,
    /// Claimed by a live distributed worker (see [`PlanCell::lease`]) —
    /// that worker is expected to complete it.
    Leased,
    /// Claimed, but the lease outlived its TTL — the holder is presumed
    /// crashed and any worker may reclaim the cell.
    StaleLease,
}

impl CellStatus {
    /// Stable display label.
    pub fn name(self) -> &'static str {
        match self {
            CellStatus::Journaled => "journaled",
            CellStatus::CachedTrace => "cached-trace",
            CellStatus::NeedsTrace => "needs-trace",
            CellStatus::MissingSource => "missing-source!",
            CellStatus::Leased => "leased",
            CellStatus::StaleLease => "stale-lease",
        }
    }
}

/// One grid cell of a [`CampaignPlan`].
#[derive(Debug, Clone)]
pub struct PlanCell {
    /// Canonical workload selector.
    pub workload: String,
    /// Config-variant label (`llc_x<scale>`).
    pub config: String,
    /// Policy name.
    pub policy: String,
    /// What a run would do with this cell.
    pub status: CellStatus,
    /// The live or stale lease on this cell, when a lease overlay was
    /// provided ([`Campaign::leases`]) and the cell is not journaled.
    pub lease: Option<LeaseView>,
}

/// The resolved grid of a campaign, with per-cell predictions — what
/// `--dry-run` prints so a big spec can be inspected before committing
/// hours of simulation. Computing a plan simulates nothing and writes
/// nothing (journals are peeked read-only; caches are only probed).
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    /// Every grid cell in spec order (workload-major, config-middle,
    /// policy-minor).
    pub cells: Vec<PlanCell>,
}

impl CampaignPlan {
    /// Cell count with each [`CellStatus`], in enum order:
    /// `(journaled, cached_trace, needs_trace, missing_source, leased,
    /// stale_lease)`.
    pub fn counts(&self) -> (usize, usize, usize, usize, usize, usize) {
        let of = |s: CellStatus| self.cells.iter().filter(|c| c.status == s).count();
        (
            of(CellStatus::Journaled),
            of(CellStatus::CachedTrace),
            of(CellStatus::NeedsTrace),
            of(CellStatus::MissingSource),
            of(CellStatus::Leased),
            of(CellStatus::StaleLease),
        )
    }

    /// The plan as a printable table, one row per cell. Leased cells name
    /// their holder: `leased(worker-a)` / `stale-lease(worker-a)`.
    pub fn table(&self) -> ccsim_core::experiment::Table {
        let mut t = ccsim_core::experiment::Table::new(
            ["workload", "config", "policy", "status"].iter().map(|s| (*s).to_owned()).collect(),
        );
        for c in &self.cells {
            let status = match (&c.status, &c.lease) {
                (CellStatus::Leased | CellStatus::StaleLease, Some(l)) => {
                    format!("{}({})", c.status.name(), l.worker)
                }
                _ => c.status.name().to_owned(),
            };
            t.row(vec![c.workload.clone(), c.config.clone(), c.policy.clone(), status]);
        }
        t
    }
}

/// One cell of a resolved campaign grid, in spec order — the unit of
/// work a distributed worker claims, simulates and journals.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Canonical workload selector.
    pub workload: String,
    /// Index into [`CampaignGrid::configs`].
    pub config_index: usize,
    /// LLC capacity multiplier of the config variant.
    pub llc_scale: u32,
    /// Policy of this cell.
    pub policy: PolicyKind,
    /// Journal/lease identity: `<workload>|<config>|<policy>`.
    pub id: String,
}

/// The fully resolved grid of a campaign: expanded workloads, config
/// variants and every cell in spec order (workload-major, config-middle,
/// policy-minor) — the order reports render in.
#[derive(Debug, Clone)]
pub struct CampaignGrid {
    /// Expanded workload selectors, in declaration order.
    pub workloads: Vec<String>,
    /// `(label, config)` variants, one per LLC scale.
    pub configs: Vec<(String, SimConfig)>,
    /// Every grid cell, in spec order.
    pub cells: Vec<GridCell>,
}

impl CampaignGrid {
    /// The cells of `workload`, in grid order.
    pub fn cells_of<'a>(&'a self, workload: &'a str) -> impl Iterator<Item = &'a GridCell> + 'a {
        self.cells.iter().filter(move |c| c.workload == workload)
    }
}

/// What a campaign run produced, beyond the report itself.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The deterministic report.
    pub report: CampaignReport,
    /// Total grid cells.
    pub cells_total: usize,
    /// Cells replayed from the journal instead of simulated.
    pub cells_resumed: usize,
    /// Trace-cache reads served from disk (0 without a cache).
    pub cache_hits: u64,
    /// Trace-cache misses that triggered generation (0 without a cache).
    pub cache_misses: u64,
}

impl Campaign {
    /// Wraps a spec with default execution settings: one worker thread,
    /// no trace cache, no journal, quiet.
    pub fn new(spec: CampaignSpec) -> Campaign {
        Campaign {
            spec,
            threads: 1,
            cache: None,
            journal_path: None,
            obs_dir: None,
            leases: Default::default(),
            extra_completed: Default::default(),
            verbose: false,
            per_cell: false,
            chunk_records: 0,
        }
    }

    /// The spec this campaign will run.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Campaign {
        self.threads = threads.max(1);
        self
    }

    /// Attaches an on-disk trace cache.
    pub fn cache(mut self, cache: TraceCache) -> Campaign {
        self.cache = Some(cache);
        self
    }

    /// Attaches a checkpoint journal at `path`; an existing journal for
    /// the same spec is resumed.
    pub fn journal(mut self, path: impl Into<PathBuf>) -> Campaign {
        self.journal_path = Some(path.into());
        self
    }

    /// Writes run telemetry into `dir`: a `run.obs.jsonl` event log and
    /// an end-of-run `manifest.json` (schema
    /// [`ccsim_obs::OBS_SCHEMA_VERSION`]), the same documents
    /// distributed workers publish per worker into the shared dir.
    pub fn obs_dir(mut self, dir: impl Into<PathBuf>) -> Campaign {
        self.obs_dir = Some(dir.into());
        self
    }

    /// Enables per-workload progress lines on stderr.
    pub fn verbose(mut self, verbose: bool) -> Campaign {
        self.verbose = verbose;
        self
    }

    /// Replays each pending cell with its own pass over the trace
    /// (`ccsim campaign --per-cell`) instead of the default one-pass
    /// lockstep grid driver. The two paths produce bit-identical
    /// reports; this is an escape hatch for comparison and debugging.
    pub fn per_cell(mut self, per_cell: bool) -> Campaign {
        self.per_cell = per_cell;
        self
    }

    /// Fixes the lockstep chunk length of the one-pass grid driver
    /// (`ccsim campaign --chunk-records`). `0` — the default — autotunes
    /// it per band against the combined engines' tag-state footprint
    /// ([`ccsim_core::autotune_chunk_records`]). Chunking never affects
    /// report bytes, only wall-clock.
    pub fn chunk_records(mut self, chunk_records: usize) -> Campaign {
        self.chunk_records = chunk_records;
        self
    }

    /// Overlays live lease state (cell id → [`LeaseView`]) onto
    /// [`Campaign::plan`] predictions, so a dry run against a shared
    /// distributed-campaign directory reports claimed cells as
    /// `leased(<worker>)` / `stale-lease(<worker>)` instead of plainly
    /// pending. Ignored by [`Campaign::run`].
    pub fn leases(mut self, leases: std::collections::BTreeMap<String, LeaseView>) -> Campaign {
        self.leases = leases;
        self
    }

    /// Marks additional cell ids as already completed for
    /// [`Campaign::plan`] — used by distributed dry runs, where the
    /// completed set comes from merging every worker's journal segment
    /// ([`crate::journal::merge_dir`]) rather than from one journal file.
    /// Ignored by [`Campaign::run`] (which needs results, not just ids).
    pub fn mark_completed(mut self, cells: impl IntoIterator<Item = String>) -> Campaign {
        self.extra_completed.extend(cells);
        self
    }

    /// Predicts what [`Campaign::run`] would do, cell by cell, without
    /// simulating, generating or writing anything: which cells the
    /// journal already holds, which workload traces are valid cache
    /// entries, and which `trace:` sources are missing outright.
    ///
    /// # Errors
    ///
    /// Returns a message on invalid workload selectors.
    pub fn plan(&self) -> Result<CampaignPlan, String> {
        let workloads = self.spec.expand_workloads()?;
        let configs = self.spec.configs();
        let journaled = match &self.journal_path {
            Some(path) => Journal::peek_completed(path, &self.spec.name, &self.spec.digest()),
            None => Default::default(),
        };
        let mut cells = Vec::new();
        for workload in &workloads {
            let workload_status = self.plan_workload_status(workload);
            for (label, _) in &configs {
                for policy in &self.spec.policies {
                    let id = format!("{workload}|{label}|{}", policy.name());
                    let mut lease = None;
                    let status =
                        if journaled.contains_key(&id) || self.extra_completed.contains(&id) {
                            CellStatus::Journaled
                        } else if workload_status == CellStatus::MissingSource {
                            // A lease can't fix a missing trace: source —
                            // every (re)claim of this cell will fail at
                            // acquisition, so the operator warning must
                            // not be masked by claim state.
                            lease = self.leases.get(&id).cloned();
                            CellStatus::MissingSource
                        } else if let Some(l) = self.leases.get(&id) {
                            lease = Some(l.clone());
                            if l.stale {
                                CellStatus::StaleLease
                            } else {
                                CellStatus::Leased
                            }
                        } else {
                            workload_status
                        };
                    cells.push(PlanCell {
                        workload: workload.clone(),
                        config: label.clone(),
                        policy: policy.name().to_owned(),
                        status,
                        lease,
                    });
                }
            }
        }
        Ok(CampaignPlan { cells })
    }

    /// The non-journaled status every cell of `workload` shares: is its
    /// trace a valid cache entry, absent, or (for `trace:` selectors) is
    /// the source file itself missing?
    fn plan_workload_status(&self, workload: &str) -> CellStatus {
        if let Some(path) = workload.strip_prefix("trace:") {
            if !Path::new(path).exists() {
                return CellStatus::MissingSource;
            }
            let cached = self.cache.as_ref().is_some_and(|cache| {
                cache
                    .path_for_ingested(Path::new(path), &ingest_options_for(workload))
                    .is_ok_and(|entry| TraceCache::entry_is_valid(&entry))
            });
            return if cached { CellStatus::CachedTrace } else { CellStatus::NeedsTrace };
        }
        let cached = self.cache.as_ref().is_some_and(|cache| {
            TraceCache::entry_is_valid(&cache.path_for(workload, self.spec.scale, self.spec.seed))
        });
        if cached {
            CellStatus::CachedTrace
        } else {
            CellStatus::NeedsTrace
        }
    }

    /// Resolves the full grid: expanded workloads, config variants, and
    /// every cell (with its journal/lease id) in spec order.
    ///
    /// # Errors
    ///
    /// Returns a message on invalid workload selectors.
    pub fn grid(&self) -> Result<CampaignGrid, String> {
        let workloads = self.spec.expand_workloads()?;
        let configs = self.spec.configs();
        let cells = workloads
            .iter()
            .flat_map(|workload| {
                configs.iter().enumerate().flat_map(move |(ci, (label, _))| {
                    self.spec.policies.iter().map(move |&policy| GridCell {
                        workload: workload.clone(),
                        config_index: ci,
                        llc_scale: self.spec.llc_scales[ci],
                        policy,
                        id: format!("{workload}|{label}|{}", policy.name()),
                    })
                })
            })
            .collect();
        Ok(CampaignGrid { workloads, configs, cells })
    }

    /// Acquires the trace of one workload — the cache-aware entry point
    /// behind [`Campaign::run`], exposed so distributed workers can
    /// simulate a claimed band of a workload's cells in one pass
    /// ([`AcquiredTrace::simulate_cells`]) without running the whole
    /// grid.
    ///
    /// # Errors
    ///
    /// Returns a message on invalid selectors, generation/ingest failures
    /// and cache I/O errors.
    pub fn acquire(&self, workload: &str) -> Result<AcquiredTrace, String> {
        acquire_trace(self.cache.as_ref(), workload, self.spec.scale, self.spec.seed)
    }

    /// Assembles the deterministic report from a complete cell-result
    /// map (cell id → result), in spec order — the same construction
    /// [`Campaign::run`] uses, so any source of results (one process, a
    /// resumed journal, or merged distributed journal segments) yields
    /// byte-identical reports.
    ///
    /// # Errors
    ///
    /// Returns a message naming missing cells — a partial map means the
    /// campaign has not finished and no report must be written.
    pub fn report_from_completed(
        &self,
        completed: &std::collections::BTreeMap<String, SimResult>,
    ) -> Result<CampaignReport, String> {
        let grid = self.grid()?;
        let missing: Vec<&str> = grid
            .cells
            .iter()
            .filter(|c| !completed.contains_key(&c.id))
            .map(|c| c.id.as_str())
            .collect();
        if !missing.is_empty() {
            let shown = missing.iter().take(5).cloned().collect::<Vec<_>>().join(", ");
            return Err(format!(
                "{} of {} cells have no journaled result yet (e.g. {shown}) — run more workers \
                 or wait for the campaign to finish",
                missing.len(),
                grid.cells.len()
            ));
        }
        let raw = grid
            .cells
            .iter()
            .map(|c| RawCell {
                config: grid.configs[c.config_index].0.clone(),
                llc_scale: c.llc_scale,
                result: completed[&c.id].clone(),
            })
            .collect();
        Ok(CampaignReport::build(&self.spec, raw))
    }

    /// Runs every pending cell of the grid and assembles the report.
    ///
    /// # Errors
    ///
    /// Returns a message on invalid workload selectors, trace generation
    /// failures, or cache/journal I/O errors.
    pub fn run(self) -> Result<CampaignOutcome, String> {
        let grid = self.grid()?;
        let mut journal = match &self.journal_path {
            Some(path) => Some(
                Journal::open(path, &self.spec.name, &self.spec.digest())
                    .map_err(|e| format!("opening journal {}: {e}", path.display()))?,
            ),
            None => None,
        };
        let mut obs = match &self.obs_dir {
            Some(dir) => {
                let meta = ccsim_obs::RunMeta {
                    campaign: self.spec.name.clone(),
                    spec_digest: self.spec.digest(),
                    worker: ccsim_obs::SOLO_WORKER.to_owned(),
                };
                Some(
                    ccsim_obs::RunObs::begin(dir, meta, "run.obs.jsonl", "manifest.json")
                        .map_err(|e| format!("opening obs sink in {}: {e}", dir.display()))?,
                )
            }
            None => None,
        };
        if let Some(o) = obs.as_mut() {
            o.event(
                "run_start",
                &[
                    ("cells_total", ccsim_obs::Field::U64(grid.cells.len() as u64)),
                    ("workloads", ccsim_obs::Field::U64(grid.workloads.len() as u64)),
                ],
            );
        }

        let mut completed: std::collections::BTreeMap<String, SimResult> =
            journal.as_ref().map(|j| j.completed().clone()).unwrap_or_default();
        let mut cells_resumed = 0usize;
        for (wi, workload) in grid.workloads.iter().enumerate() {
            let cells: Vec<&GridCell> = grid.cells_of(workload).collect();
            let pending: Vec<&&GridCell> =
                cells.iter().filter(|c| !completed.contains_key(&c.id)).collect();
            cells_resumed += cells.len() - pending.len();

            if !pending.is_empty() {
                if let Some(o) = obs.as_mut() {
                    o.event(
                        "band_start",
                        &[
                            ("workload", ccsim_obs::Field::Str(workload)),
                            ("cells", ccsim_obs::Field::U64(pending.len() as u64)),
                        ],
                    );
                }
                // Acquire the trace only when at least one cell needs it:
                // a fully-journaled workload costs no generation at all.
                let trace = self.acquire(workload)?;
                let band_start = std::time::Instant::now();
                let results: Vec<Result<SimResult, String>> = if self.per_cell {
                    run_jobs(pending.len(), self.threads, |i| {
                        let cell = pending[i];
                        trace.simulate_cell(&grid.configs[cell.config_index].1, cell.policy)
                    })
                } else {
                    let band: Vec<(SimConfig, PolicyKind)> = pending
                        .iter()
                        .map(|cell| (grid.configs[cell.config_index].1, cell.policy))
                        .collect();
                    trace
                        .simulate_cells(&band, self.threads, self.chunk_records)?
                        .into_iter()
                        .map(Ok)
                        .collect()
                };
                let band_ns = band_start.elapsed().as_nanos() as u64;
                let records_simulated = trace.records() * pending.len() as u64;
                record_band_metrics(pending.len() as u64, records_simulated, band_ns);
                if let Some(o) = obs.as_mut() {
                    o.add_band(pending.len() as u64, records_simulated, band_ns);
                    o.event(
                        "band_done",
                        &[
                            ("workload", ccsim_obs::Field::Str(workload)),
                            ("cells", ccsim_obs::Field::U64(pending.len() as u64)),
                            ("trace_records", ccsim_obs::Field::U64(trace.records())),
                            ("sim_ns", ccsim_obs::Field::U64(band_ns)),
                            ("streamed", ccsim_obs::Field::Bool(trace.is_streamed())),
                        ],
                    );
                    let _ = o.write_manifest();
                }
                if self.verbose {
                    let passes = if self.per_cell {
                        pending.len()
                    } else {
                        trace.passes_for(pending.len(), self.threads)
                    };
                    eprintln!(
                        "[{}/{}] {:<16} {} records, {} cells in {} pass(es){}",
                        wi + 1,
                        grid.workloads.len(),
                        workload,
                        trace.records(),
                        pending.len(),
                        passes,
                        if trace.is_streamed() { " (streamed)" } else { "" }
                    );
                }
                for (cell, result) in pending.iter().zip(results) {
                    let result = result?;
                    if let Some(j) = journal.as_mut() {
                        j.record(&cell.id, &result).map_err(|e| format!("writing journal: {e}"))?;
                    }
                    completed.insert(cell.id.clone(), result);
                }
            } else {
                if let Some(o) = obs.as_mut() {
                    o.event(
                        "band_resumed",
                        &[
                            ("workload", ccsim_obs::Field::Str(workload)),
                            ("cells", ccsim_obs::Field::U64(cells.len() as u64)),
                        ],
                    );
                }
                if self.verbose {
                    eprintln!(
                        "[{}/{}] {:<16} resumed from journal",
                        wi + 1,
                        grid.workloads.len(),
                        workload
                    );
                }
            }
        }

        ccsim_obs::metrics().campaign_runs.inc();
        if let Some(o) = obs.take() {
            // Best-effort: a failed manifest write must not fail the
            // campaign the telemetry merely observes.
            let _ = o.finish();
        }
        let cells_total = grid.cells.len();
        Ok(CampaignOutcome {
            report: self.report_from_completed(&completed)?,
            cells_total,
            cells_resumed,
            cache_hits: self.cache.as_ref().map_or(0, TraceCache::hits),
            cache_misses: self.cache.as_ref().map_or(0, TraceCache::misses),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::from_json_str(
            r#"{"name": "unit", "base_config": "tiny",
                "workloads": ["xsbench.small"],
                "policies": ["lru", "srrip"], "llc_scales": [1, 2]}"#,
        )
        .unwrap()
    }

    #[test]
    fn grid_covers_workloads_times_policies_times_configs() {
        let outcome = Campaign::new(tiny_spec()).threads(4).run().unwrap();
        assert_eq!(outcome.cells_total, 4);
        assert_eq!(outcome.report.cells.len(), 4);
        assert_eq!(outcome.cells_resumed, 0);
        assert_eq!(outcome.cache_hits + outcome.cache_misses, 0);
        // Spec order: config-major within the workload, policy-minor.
        let ids: Vec<String> = outcome
            .report
            .cells
            .iter()
            .map(|c| format!("{}|{}|{}", c.workload, c.config, c.policy))
            .collect();
        assert_eq!(
            ids,
            [
                "xsbench.small|llc_x1|lru",
                "xsbench.small|llc_x1|srrip",
                "xsbench.small|llc_x2|lru",
                "xsbench.small|llc_x2|srrip"
            ]
        );
    }

    #[test]
    fn parallel_run_equals_serial_run() {
        let serial = Campaign::new(tiny_spec()).threads(1).run().unwrap();
        let parallel = Campaign::new(tiny_spec()).threads(8).run().unwrap();
        assert_eq!(serial.report, parallel.report);
    }

    #[test]
    fn one_pass_run_equals_per_cell_run() {
        let one_pass = Campaign::new(tiny_spec()).threads(3).run().unwrap();
        let per_cell = Campaign::new(tiny_spec()).threads(3).per_cell(true).run().unwrap();
        assert_eq!(one_pass.report, per_cell.report);
        // An explicit chunk length changes batching mechanics only —
        // report bytes must not move.
        let chunked = Campaign::new(tiny_spec()).threads(3).chunk_records(17).run().unwrap();
        assert_eq!(one_pass.report, chunked.report);
    }

    #[test]
    fn simulate_cells_matches_simulate_cell_for_any_shard_count() {
        let campaign = Campaign::new(tiny_spec());
        let grid = campaign.grid().unwrap();
        let trace = campaign.acquire("xsbench.small").unwrap();
        let band: Vec<(SimConfig, PolicyKind)> =
            grid.cells.iter().map(|c| (grid.configs[c.config_index].1, c.policy)).collect();
        let reference: Vec<SimResult> =
            band.iter().map(|(cfg, policy)| trace.simulate_cell(cfg, *policy).unwrap()).collect();
        for threads in [1, 2, 3, 16] {
            assert_eq!(trace.simulate_cells(&band, threads, 0).unwrap(), reference, "{threads}");
            assert!(trace.passes_for(band.len(), threads) <= band.len());
        }
        assert!(trace.simulate_cells(&[], 4, 0).unwrap().is_empty());
    }

    #[test]
    fn heterogeneous_band_balancing_preserves_cell_order_and_results() {
        // A band mixing LLC scales 1/2/4 across policies: balancing
        // orders cells by descending LLC capacity and deals them
        // round-robin, so every shard gets at most one more giant-LLC
        // cell than any other — and the scatter must restore results to
        // `cells` order exactly.
        let campaign = Campaign::new(tiny_spec());
        let trace = campaign.acquire("xsbench.small").unwrap();
        let mut band = Vec::new();
        for scale in [4u32, 1, 2, 1, 4, 2, 1] {
            for policy in [PolicyKind::Lru, PolicyKind::Mpppb] {
                band.push((SimConfig::tiny().with_llc_scale(scale), policy));
            }
        }
        let reference: Vec<SimResult> =
            band.iter().map(|(cfg, policy)| trace.simulate_cell(cfg, *policy).unwrap()).collect();
        for threads in [1, 2, 3, 5, 14, 100] {
            assert_eq!(trace.simulate_cells(&band, threads, 0).unwrap(), reference, "{threads}");
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ccsim_runner_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn plan_predicts_journal_and_cache_state() {
        let dir = temp_dir("plan");
        let journal = dir.join("journal.jsonl");
        let cache_dir = dir.join("cache");

        let fresh = Campaign::new(tiny_spec())
            .cache(TraceCache::new(&cache_dir).unwrap())
            .journal(&journal)
            .plan()
            .unwrap();
        assert_eq!(fresh.cells.len(), 4);
        assert_eq!(fresh.counts(), (0, 0, 4, 0, 0, 0), "nothing exists yet");
        assert!(!journal.exists(), "planning must not create the journal");

        Campaign::new(tiny_spec())
            .cache(TraceCache::new(&cache_dir).unwrap())
            .journal(&journal)
            .run()
            .unwrap();
        let done = Campaign::new(tiny_spec())
            .cache(TraceCache::new(&cache_dir).unwrap())
            .journal(&journal)
            .plan()
            .unwrap();
        assert_eq!(done.counts(), (4, 0, 0, 0, 0, 0), "everything journaled after a run");

        // Journal gone, cache intact: cells pend but the trace is cached.
        std::fs::remove_file(&journal).unwrap();
        let cached = Campaign::new(tiny_spec())
            .cache(TraceCache::new(&cache_dir).unwrap())
            .journal(&journal)
            .plan()
            .unwrap();
        assert_eq!(cached.counts(), (0, 4, 0, 0, 0, 0));
        let table = cached.table().to_csv();
        assert!(table.contains("xsbench.small,llc_x1,lru,cached-trace"), "{table}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_trace_source_is_flagged_in_the_plan_and_fails_the_run() {
        let spec = CampaignSpec::from_json_str(
            r#"{"name": "ext", "base_config": "tiny",
                "workloads": ["trace:/nonexistent/foo.champsim"],
                "policies": ["lru"]}"#,
        )
        .unwrap();
        let plan = Campaign::new(spec.clone()).plan().unwrap();
        assert_eq!(plan.counts(), (0, 0, 0, 1, 0, 0));
        assert_eq!(plan.cells[0].status.name(), "missing-source!");

        // A lease on the cell must not mask the missing source: every
        // (re)claim of it would fail at acquisition anyway.
        let mut leases = std::collections::BTreeMap::new();
        leases.insert(
            "trace:/nonexistent/foo.champsim|llc_x1|lru".to_owned(),
            LeaseView { worker: "w".into(), epoch: 1, stale: false },
        );
        let leased_plan = Campaign::new(spec.clone()).leases(leases).plan().unwrap();
        assert_eq!(leased_plan.counts(), (0, 0, 0, 1, 0, 0), "missing-source wins over leased");
        assert_eq!(leased_plan.cells[0].lease.as_ref().unwrap().worker, "w");
        let err = Campaign::new(spec).run().unwrap_err();
        assert!(err.contains("/nonexistent/foo.champsim"), "{err}");
    }

    #[test]
    fn plan_overlays_leases_and_merged_completion() {
        use std::collections::BTreeMap;
        let mut leases = BTreeMap::new();
        leases.insert(
            "xsbench.small|llc_x1|lru".to_owned(),
            LeaseView { worker: "w-alive".into(), epoch: 1, stale: false },
        );
        leases.insert(
            "xsbench.small|llc_x1|srrip".to_owned(),
            LeaseView { worker: "w-dead".into(), epoch: 2, stale: true },
        );
        // A lease on an already-completed cell must not demote it.
        leases.insert(
            "xsbench.small|llc_x2|lru".to_owned(),
            LeaseView { worker: "w-late".into(), epoch: 1, stale: false },
        );
        let plan = Campaign::new(tiny_spec())
            .leases(leases)
            .mark_completed(["xsbench.small|llc_x2|lru".to_owned()])
            .plan()
            .unwrap();
        assert_eq!(plan.counts(), (1, 0, 1, 0, 1, 1));
        let csv = plan.table().to_csv();
        assert!(csv.contains("xsbench.small,llc_x1,lru,leased(w-alive)"), "{csv}");
        assert!(csv.contains("xsbench.small,llc_x1,srrip,stale-lease(w-dead)"), "{csv}");
        assert!(csv.contains("xsbench.small,llc_x2,lru,journaled"), "{csv}");
    }

    #[test]
    fn grid_and_report_from_completed_match_a_full_run() {
        let campaign = Campaign::new(tiny_spec());
        let grid = campaign.grid().unwrap();
        assert_eq!(grid.cells.len(), 4);
        assert_eq!(grid.cells[0].id, "xsbench.small|llc_x1|lru");
        assert_eq!(grid.cells[3].id, "xsbench.small|llc_x2|srrip");

        // Simulate every cell through the claim-one-cell API and
        // assemble: byte-identical to the monolithic run.
        let mut completed = std::collections::BTreeMap::new();
        for workload in &grid.workloads {
            let trace = campaign.acquire(workload).unwrap();
            for cell in grid.cells_of(workload) {
                let result =
                    trace.simulate_cell(&grid.configs[cell.config_index].1, cell.policy).unwrap();
                completed.insert(cell.id.clone(), result);
            }
        }
        let assembled = campaign.report_from_completed(&completed).unwrap();
        let monolithic = Campaign::new(tiny_spec()).threads(4).run().unwrap();
        assert_eq!(assembled.to_json_string(), monolithic.report.to_json_string());

        // A partial map refuses to assemble, naming what's missing.
        completed.remove("xsbench.small|llc_x2|srrip");
        let err = campaign.report_from_completed(&completed).unwrap_err();
        assert!(err.contains("1 of 4 cells"), "{err}");
        assert!(err.contains("xsbench.small|llc_x2|srrip"), "{err}");
    }

    #[test]
    fn external_trace_workload_runs_without_a_cache() {
        use ccsim_ingest::champsim::{ChampSimRecord, ChampSimWriter};
        let dir = temp_dir("ext_nocache");
        let source = dir.join("mini.champsim");
        let mut w = ChampSimWriter::new(std::fs::File::create(&source).unwrap());
        for i in 0..200u64 {
            w.write(&ChampSimRecord::nonmem(0x400 + 4 * i)).unwrap();
            w.write(&ChampSimRecord::load(0x600 + 4 * i, 0x10000 + 64 * (i % 32))).unwrap();
        }
        drop(w);
        let selector = format!("trace:{}", source.display());
        let spec = CampaignSpec::from_json_str(&format!(
            r#"{{"name": "ext", "base_config": "tiny",
                 "workloads": ["{selector}"], "policies": ["lru", "srrip"]}}"#
        ))
        .unwrap();
        let outcome = Campaign::new(spec).threads(2).run().unwrap();
        assert_eq!(outcome.cells_total, 2);
        assert_eq!(outcome.report.cells[0].workload, selector);
        assert_eq!(outcome.report.cells[0].suite, "external");
        assert_eq!(outcome.report.cells[0].result.instructions, 400);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
