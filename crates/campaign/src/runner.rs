//! The campaign engine: grid expansion, cached trace acquisition,
//! work-stealing execution and journaled checkpointing.

use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

use ccsim_core::experiment::run_jobs;
use ccsim_core::{simulate, simulate_stream, SimConfig, SimResult};
use ccsim_ingest::{ingest_file, IngestOptions};
use ccsim_policies::PolicyKind;
use ccsim_trace::{read_trace_header, Trace, TraceReader};
use ccsim_workloads::{build_workload_seeded, SuiteScale};

use crate::cache::TraceCache;
use crate::journal::Journal;
use crate::report::{CampaignReport, RawCell};
use crate::spec::CampaignSpec;

/// The ingest options every `trace:` selector resolves with: strict
/// decoding, auto-detected format, the full selector as the workload
/// name (so cells, journals and reports all key consistently).
fn ingest_options_for(selector: &str) -> IngestOptions {
    IngestOptions { format: None, lossy: false, name: Some(selector.to_owned()) }
}

/// The trace of one workload, ready for the executor.
///
/// Synthetic workloads are generated (or cache-read) into memory — they
/// are bounded by construction. External `trace:` selectors stay **on
/// disk**: each cell streams the converted `CCTR` file through
/// [`simulate_stream`], so a multi-gigabyte ingested trace never
/// materializes no matter how many (policy × config) cells replay it.
#[derive(Debug)]
enum WorkloadTrace {
    /// Resident trace, replayed with [`simulate`].
    InMemory(Trace),
    /// On-disk `CCTR` file, streamed per cell. `temp` marks a one-shot
    /// conversion (no cache attached) deleted after the workload's cells
    /// finish.
    Streamed { path: PathBuf, records: u64, temp: bool },
}

impl WorkloadTrace {
    /// Memory-access records per replay (for progress lines).
    fn records(&self) -> u64 {
        match self {
            WorkloadTrace::InMemory(trace) => trace.len() as u64,
            WorkloadTrace::Streamed { records, .. } => *records,
        }
    }

    /// Runs one grid cell over this trace.
    fn simulate_cell(&self, config: &SimConfig, policy: PolicyKind) -> Result<SimResult, String> {
        match self {
            WorkloadTrace::InMemory(trace) => Ok(simulate(trace, config, policy)),
            WorkloadTrace::Streamed { path, .. } => {
                let file = File::open(path)
                    .map_err(|e| format!("opening trace {}: {e}", path.display()))?;
                let reader = TraceReader::new(BufReader::new(file))
                    .map_err(|e| format!("decoding trace {}: {e}", path.display()))?;
                simulate_stream(reader, config, policy)
                    .map_err(|e| format!("streaming trace {}: {e}", path.display()))
            }
        }
    }
}

/// Probes the header of a `CCTR` file for its record count.
fn cctr_record_count(path: &Path) -> Result<u64, String> {
    let file = File::open(path).map_err(|e| format!("opening {}: {e}", path.display()))?;
    read_trace_header(BufReader::new(file))
        .map(|h| h.count)
        .map_err(|e| format!("reading header of {}: {e}", path.display()))
}

/// Acquires the trace for one workload selector: external `trace:` files
/// go through the ingest pipeline onto disk (the trace cache when one is
/// attached, a temporary file otherwise) and are streamed per cell;
/// synthetic workloads come from the per-name builders (cached when a
/// cache is attached).
fn acquire_trace(
    cache: Option<&TraceCache>,
    workload: &str,
    scale: SuiteScale,
    seed: u64,
) -> Result<WorkloadTrace, String> {
    if let Some(source) = workload.strip_prefix("trace:") {
        let opts = ingest_options_for(workload);
        let (path, temp) = match cache {
            Some(cache) => (cache.ensure_ingested(Path::new(source), &opts)?, false),
            None => {
                // One-shot conversion: still streamed (bounded memory),
                // just not kept. pid + a process-wide counter keep the
                // name unique even across concurrent campaigns in one
                // process replaying the same selector.
                static TEMP_SEQ: std::sync::atomic::AtomicU64 =
                    std::sync::atomic::AtomicU64::new(0);
                let tmp = std::env::temp_dir().join(format!(
                    "ccsim-stream-{}-{}-{:016x}.cctr",
                    std::process::id(),
                    TEMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                    crate::spec::fnv1a64(workload.as_bytes()),
                ));
                ingest_file(Path::new(source), &tmp, &opts)
                    .map_err(|e| format!("ingesting {source}: {e}"))?;
                (tmp, true)
            }
        };
        let records = cctr_record_count(&path)?;
        return Ok(WorkloadTrace::Streamed { path, records, temp });
    }
    let trace = match cache {
        Some(cache) => cache.get_or_generate(workload, scale, seed, || {
            build_workload_seeded(workload, scale, seed)
        })?,
        None => build_workload_seeded(workload, scale, seed)?,
    };
    Ok(WorkloadTrace::InMemory(trace))
}

/// A configured, runnable campaign.
///
/// Traces are acquired per workload (via the [`TraceCache`] when one is
/// attached, regenerated otherwise) and dropped as soon as the workload's
/// cells finish, so at most one trace is alive at a time — the memory
/// profile of the old streaming figure binaries. Within a workload, all
/// pending (policy x config) cells run in parallel on the work-stealing
/// executor ([`run_jobs`]).
///
/// # Examples
///
/// ```no_run
/// use ccsim_campaign::{Campaign, CampaignSpec};
///
/// let spec = CampaignSpec::from_json_str(
///     r#"{"name": "demo", "workloads": ["xsbench.small"],
///         "policies": ["lru", "srrip"], "base_config": "tiny"}"#,
/// ).unwrap();
/// let outcome = Campaign::new(spec).threads(4).run().unwrap();
/// println!("{}", outcome.report.cells_table().render());
/// ```
#[derive(Debug)]
pub struct Campaign {
    spec: CampaignSpec,
    threads: usize,
    cache: Option<TraceCache>,
    journal_path: Option<PathBuf>,
    verbose: bool,
}

/// The predicted fate of one grid cell, as reported by
/// [`Campaign::plan`] (the engine behind `ccsim campaign --dry-run`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// Already completed in the journal — a run replays it for free.
    Journaled,
    /// Pending, and its workload's trace is a valid cache entry — a run
    /// simulates it without generating or ingesting anything.
    CachedTrace,
    /// Pending, and its workload's trace must first be generated (or
    /// ingested, for `trace:` selectors).
    NeedsTrace,
    /// A `trace:` selector whose source file does not exist — the run
    /// would fail at this workload.
    MissingSource,
}

impl CellStatus {
    /// Stable display label.
    pub fn name(self) -> &'static str {
        match self {
            CellStatus::Journaled => "journaled",
            CellStatus::CachedTrace => "cached-trace",
            CellStatus::NeedsTrace => "needs-trace",
            CellStatus::MissingSource => "missing-source!",
        }
    }
}

/// One grid cell of a [`CampaignPlan`].
#[derive(Debug, Clone)]
pub struct PlanCell {
    /// Canonical workload selector.
    pub workload: String,
    /// Config-variant label (`llc_x<scale>`).
    pub config: String,
    /// Policy name.
    pub policy: String,
    /// What a run would do with this cell.
    pub status: CellStatus,
}

/// The resolved grid of a campaign, with per-cell predictions — what
/// `--dry-run` prints so a big spec can be inspected before committing
/// hours of simulation. Computing a plan simulates nothing and writes
/// nothing (journals are peeked read-only; caches are only probed).
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    /// Every grid cell in spec order (workload-major, config-middle,
    /// policy-minor).
    pub cells: Vec<PlanCell>,
}

impl CampaignPlan {
    /// Cell count with each [`CellStatus`], in enum order:
    /// `(journaled, cached_trace, needs_trace, missing_source)`.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let of = |s: CellStatus| self.cells.iter().filter(|c| c.status == s).count();
        (
            of(CellStatus::Journaled),
            of(CellStatus::CachedTrace),
            of(CellStatus::NeedsTrace),
            of(CellStatus::MissingSource),
        )
    }

    /// The plan as a printable table, one row per cell.
    pub fn table(&self) -> ccsim_core::experiment::Table {
        let mut t = ccsim_core::experiment::Table::new(
            ["workload", "config", "policy", "status"].iter().map(|s| (*s).to_owned()).collect(),
        );
        for c in &self.cells {
            t.row(vec![
                c.workload.clone(),
                c.config.clone(),
                c.policy.clone(),
                c.status.name().to_owned(),
            ]);
        }
        t
    }
}

/// What a campaign run produced, beyond the report itself.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The deterministic report.
    pub report: CampaignReport,
    /// Total grid cells.
    pub cells_total: usize,
    /// Cells replayed from the journal instead of simulated.
    pub cells_resumed: usize,
    /// Trace-cache reads served from disk (0 without a cache).
    pub cache_hits: u64,
    /// Trace-cache misses that triggered generation (0 without a cache).
    pub cache_misses: u64,
}

impl Campaign {
    /// Wraps a spec with default execution settings: one worker thread,
    /// no trace cache, no journal, quiet.
    pub fn new(spec: CampaignSpec) -> Campaign {
        Campaign { spec, threads: 1, cache: None, journal_path: None, verbose: false }
    }

    /// The spec this campaign will run.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Campaign {
        self.threads = threads.max(1);
        self
    }

    /// Attaches an on-disk trace cache.
    pub fn cache(mut self, cache: TraceCache) -> Campaign {
        self.cache = Some(cache);
        self
    }

    /// Attaches a checkpoint journal at `path`; an existing journal for
    /// the same spec is resumed.
    pub fn journal(mut self, path: impl Into<PathBuf>) -> Campaign {
        self.journal_path = Some(path.into());
        self
    }

    /// Enables per-workload progress lines on stderr.
    pub fn verbose(mut self, verbose: bool) -> Campaign {
        self.verbose = verbose;
        self
    }

    /// Predicts what [`Campaign::run`] would do, cell by cell, without
    /// simulating, generating or writing anything: which cells the
    /// journal already holds, which workload traces are valid cache
    /// entries, and which `trace:` sources are missing outright.
    ///
    /// # Errors
    ///
    /// Returns a message on invalid workload selectors.
    pub fn plan(&self) -> Result<CampaignPlan, String> {
        let workloads = self.spec.expand_workloads()?;
        let configs = self.spec.configs();
        let journaled = match &self.journal_path {
            Some(path) => Journal::peek_completed(path, &self.spec.name, &self.spec.digest()),
            None => Default::default(),
        };
        let mut cells = Vec::new();
        for workload in &workloads {
            let workload_status = self.plan_workload_status(workload);
            for (label, _) in &configs {
                for policy in &self.spec.policies {
                    let id = format!("{workload}|{label}|{}", policy.name());
                    let status = if journaled.contains_key(&id) {
                        CellStatus::Journaled
                    } else {
                        workload_status
                    };
                    cells.push(PlanCell {
                        workload: workload.clone(),
                        config: label.clone(),
                        policy: policy.name().to_owned(),
                        status,
                    });
                }
            }
        }
        Ok(CampaignPlan { cells })
    }

    /// The non-journaled status every cell of `workload` shares: is its
    /// trace a valid cache entry, absent, or (for `trace:` selectors) is
    /// the source file itself missing?
    fn plan_workload_status(&self, workload: &str) -> CellStatus {
        if let Some(path) = workload.strip_prefix("trace:") {
            if !Path::new(path).exists() {
                return CellStatus::MissingSource;
            }
            let cached = self.cache.as_ref().is_some_and(|cache| {
                cache
                    .path_for_ingested(Path::new(path), &ingest_options_for(workload))
                    .is_ok_and(|entry| TraceCache::entry_is_valid(&entry))
            });
            return if cached { CellStatus::CachedTrace } else { CellStatus::NeedsTrace };
        }
        let cached = self.cache.as_ref().is_some_and(|cache| {
            TraceCache::entry_is_valid(&cache.path_for(workload, self.spec.scale, self.spec.seed))
        });
        if cached {
            CellStatus::CachedTrace
        } else {
            CellStatus::NeedsTrace
        }
    }

    /// Runs every pending cell of the grid and assembles the report.
    ///
    /// # Errors
    ///
    /// Returns a message on invalid workload selectors, trace generation
    /// failures, or cache/journal I/O errors.
    pub fn run(self) -> Result<CampaignOutcome, String> {
        let workloads = self.spec.expand_workloads()?;
        let configs = self.spec.configs();
        let mut journal = match &self.journal_path {
            Some(path) => Some(
                Journal::open(path, &self.spec.name, &self.spec.digest())
                    .map_err(|e| format!("opening journal {}: {e}", path.display()))?,
            ),
            None => None,
        };

        let mut raw: Vec<RawCell> = Vec::new();
        let mut cells_resumed = 0usize;
        for (wi, workload) in workloads.iter().enumerate() {
            // The workload's cells in grid order: config-major, policy-minor.
            let cells: Vec<(usize, PolicyKind, String)> = configs
                .iter()
                .enumerate()
                .flat_map(|(ci, (label, _))| {
                    self.spec.policies.iter().map(move |&policy| {
                        (ci, policy, format!("{workload}|{label}|{}", policy.name()))
                    })
                })
                .collect();
            let pending: Vec<&(usize, PolicyKind, String)> = cells
                .iter()
                .filter(|(_, _, id)| {
                    !journal.as_ref().is_some_and(|j| j.completed().contains_key(id))
                })
                .collect();
            cells_resumed += cells.len() - pending.len();

            let mut fresh: Vec<(String, SimResult)> = Vec::new();
            if !pending.is_empty() {
                // Acquire the trace only when at least one cell needs it:
                // a fully-journaled workload costs no generation at all.
                let trace =
                    acquire_trace(self.cache.as_ref(), workload, self.spec.scale, self.spec.seed)?;
                let results = run_jobs(pending.len(), self.threads, |i| {
                    let (ci, policy, _) = pending[i];
                    trace.simulate_cell(&configs[*ci].1, *policy)
                });
                if self.verbose {
                    eprintln!(
                        "[{}/{}] {:<16} {} records, {} cells simulated{}",
                        wi + 1,
                        workloads.len(),
                        workload,
                        trace.records(),
                        pending.len(),
                        if matches!(trace, WorkloadTrace::Streamed { .. }) {
                            " (streamed)"
                        } else {
                            ""
                        }
                    );
                }
                let recorded = (|| -> Result<(), String> {
                    for ((_, _, cell_id), result) in pending.iter().zip(results) {
                        let result = result?;
                        if let Some(j) = journal.as_mut() {
                            j.record(cell_id, &result)
                                .map_err(|e| format!("writing journal: {e}"))?;
                        }
                        fresh.push((cell_id.clone(), result));
                    }
                    Ok(())
                })();
                if let WorkloadTrace::Streamed { path, temp: true, .. } = &trace {
                    let _ = std::fs::remove_file(path);
                }
                recorded?;
            } else if self.verbose {
                eprintln!("[{}/{}] {:<16} resumed from journal", wi + 1, workloads.len(), workload);
            }

            for (ci, _, cell_id) in &cells {
                let result = fresh
                    .iter()
                    .find(|(id, _)| id == cell_id)
                    .map(|(_, r)| r.clone())
                    .unwrap_or_else(|| {
                        journal.as_ref().expect("non-fresh cells come from the journal").completed()
                            [cell_id]
                            .clone()
                    });
                raw.push(RawCell {
                    config: configs[*ci].0.clone(),
                    llc_scale: self.spec.llc_scales[*ci],
                    result,
                });
            }
        }

        let cells_total = workloads.len() * configs.len() * self.spec.policies.len();
        Ok(CampaignOutcome {
            report: CampaignReport::build(&self.spec, raw),
            cells_total,
            cells_resumed,
            cache_hits: self.cache.as_ref().map_or(0, TraceCache::hits),
            cache_misses: self.cache.as_ref().map_or(0, TraceCache::misses),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::from_json_str(
            r#"{"name": "unit", "base_config": "tiny",
                "workloads": ["xsbench.small"],
                "policies": ["lru", "srrip"], "llc_scales": [1, 2]}"#,
        )
        .unwrap()
    }

    #[test]
    fn grid_covers_workloads_times_policies_times_configs() {
        let outcome = Campaign::new(tiny_spec()).threads(4).run().unwrap();
        assert_eq!(outcome.cells_total, 4);
        assert_eq!(outcome.report.cells.len(), 4);
        assert_eq!(outcome.cells_resumed, 0);
        assert_eq!(outcome.cache_hits + outcome.cache_misses, 0);
        // Spec order: config-major within the workload, policy-minor.
        let ids: Vec<String> = outcome
            .report
            .cells
            .iter()
            .map(|c| format!("{}|{}|{}", c.workload, c.config, c.policy))
            .collect();
        assert_eq!(
            ids,
            [
                "xsbench.small|llc_x1|lru",
                "xsbench.small|llc_x1|srrip",
                "xsbench.small|llc_x2|lru",
                "xsbench.small|llc_x2|srrip"
            ]
        );
    }

    #[test]
    fn parallel_run_equals_serial_run() {
        let serial = Campaign::new(tiny_spec()).threads(1).run().unwrap();
        let parallel = Campaign::new(tiny_spec()).threads(8).run().unwrap();
        assert_eq!(serial.report, parallel.report);
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ccsim_runner_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn plan_predicts_journal_and_cache_state() {
        let dir = temp_dir("plan");
        let journal = dir.join("journal.jsonl");
        let cache_dir = dir.join("cache");

        let fresh = Campaign::new(tiny_spec())
            .cache(TraceCache::new(&cache_dir).unwrap())
            .journal(&journal)
            .plan()
            .unwrap();
        assert_eq!(fresh.cells.len(), 4);
        assert_eq!(fresh.counts(), (0, 0, 4, 0), "nothing exists yet");
        assert!(!journal.exists(), "planning must not create the journal");

        Campaign::new(tiny_spec())
            .cache(TraceCache::new(&cache_dir).unwrap())
            .journal(&journal)
            .run()
            .unwrap();
        let done = Campaign::new(tiny_spec())
            .cache(TraceCache::new(&cache_dir).unwrap())
            .journal(&journal)
            .plan()
            .unwrap();
        assert_eq!(done.counts(), (4, 0, 0, 0), "everything journaled after a run");

        // Journal gone, cache intact: cells pend but the trace is cached.
        std::fs::remove_file(&journal).unwrap();
        let cached = Campaign::new(tiny_spec())
            .cache(TraceCache::new(&cache_dir).unwrap())
            .journal(&journal)
            .plan()
            .unwrap();
        assert_eq!(cached.counts(), (0, 4, 0, 0));
        let table = cached.table().to_csv();
        assert!(table.contains("xsbench.small,llc_x1,lru,cached-trace"), "{table}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_trace_source_is_flagged_in_the_plan_and_fails_the_run() {
        let spec = CampaignSpec::from_json_str(
            r#"{"name": "ext", "base_config": "tiny",
                "workloads": ["trace:/nonexistent/foo.champsim"],
                "policies": ["lru"]}"#,
        )
        .unwrap();
        let plan = Campaign::new(spec.clone()).plan().unwrap();
        assert_eq!(plan.counts(), (0, 0, 0, 1));
        assert_eq!(plan.cells[0].status.name(), "missing-source!");
        let err = Campaign::new(spec).run().unwrap_err();
        assert!(err.contains("/nonexistent/foo.champsim"), "{err}");
    }

    #[test]
    fn external_trace_workload_runs_without_a_cache() {
        use ccsim_ingest::champsim::{ChampSimRecord, ChampSimWriter};
        let dir = temp_dir("ext_nocache");
        let source = dir.join("mini.champsim");
        let mut w = ChampSimWriter::new(std::fs::File::create(&source).unwrap());
        for i in 0..200u64 {
            w.write(&ChampSimRecord::nonmem(0x400 + 4 * i)).unwrap();
            w.write(&ChampSimRecord::load(0x600 + 4 * i, 0x10000 + 64 * (i % 32))).unwrap();
        }
        drop(w);
        let selector = format!("trace:{}", source.display());
        let spec = CampaignSpec::from_json_str(&format!(
            r#"{{"name": "ext", "base_config": "tiny",
                 "workloads": ["{selector}"], "policies": ["lru", "srrip"]}}"#
        ))
        .unwrap();
        let outcome = Campaign::new(spec).threads(2).run().unwrap();
        assert_eq!(outcome.cells_total, 2);
        assert_eq!(outcome.report.cells[0].workload, selector);
        assert_eq!(outcome.report.cells[0].suite, "external");
        assert_eq!(outcome.report.cells[0].result.instructions, 400);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
