//! Machine-readable campaign reports.
//!
//! A [`CampaignReport`] is the deterministic output of a campaign run:
//! one [`CampaignCell`] per grid cell (in spec order) carrying the raw
//! [`SimResult`] counters plus derived metrics (IPC, MPKI and hit rate per
//! level, DRAM reach, speed-up over LRU). It renders as:
//!
//! * canonical JSON ([`CampaignReport::to_json`], schema pinned by
//!   `tests/fixtures/campaign_report_v2.json`; v2 added the
//!   `writeback_bypass_overrides` cache counter),
//! * per-cell CSV ([`CampaignReport::to_csv`]),
//! * the paper's pretty tables ([`CampaignReport::cells_table`],
//!   [`CampaignReport::speedup_by_suite_table`],
//!   [`CampaignReport::mpki_table`]).
//!
//! Determinism contract: the same spec and seed produce byte-identical
//! JSON and CSV, whether or not the run was interrupted and resumed.

use ccsim_core::experiment::report::fmt_f;
use ccsim_core::experiment::Table;
use ccsim_core::{geomean_speedup_percent, SimResult};
use ccsim_workloads::Suite;

use crate::journal::sim_result_to_json;
use crate::json::Json;
use crate::spec::CampaignSpec;

/// Version of the JSON report schema. v2 added the
/// `writeback_bypass_overrides` counter to each per-level stats object;
/// consumers that only read derived metrics (e.g. `report-diff`) accept
/// v1 reports too ([`MIN_REPORT_SCHEMA_VERSION`]).
pub const REPORT_SCHEMA_VERSION: u64 = 2;

/// Oldest report schema version `report-diff` still understands.
pub const MIN_REPORT_SCHEMA_VERSION: u64 = 1;

/// One completed grid cell, ready for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// Canonical workload name.
    pub workload: String,
    /// Display name of the suite the workload belongs to.
    pub suite: String,
    /// Config-variant label (`llc_x<scale>`).
    pub config: String,
    /// LLC capacity multiplier of the variant.
    pub llc_scale: u32,
    /// Policy name.
    pub policy: String,
    /// The full simulation result.
    pub result: SimResult,
    /// Percentage IPC speed-up over the LRU cell of the same
    /// (workload, config), when the grid contains one.
    pub speedup_vs_lru: Option<f64>,
}

/// A raw completed cell as produced by the executor, before derived
/// metrics are attached.
#[derive(Debug, Clone)]
pub struct RawCell {
    /// Config-variant label.
    pub config: String,
    /// LLC capacity multiplier.
    pub llc_scale: u32,
    /// The simulation result (carries workload and policy names).
    pub result: SimResult,
}

/// The deterministic, machine-readable outcome of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Canonical spec echo (grid identity).
    pub spec: CampaignSpec,
    /// One cell per grid point, in spec order.
    pub cells: Vec<CampaignCell>,
}

impl CampaignReport {
    /// Assembles a report from executor output, computing per-cell
    /// speed-ups against the LRU cell of the same (workload, config).
    pub fn build(spec: &CampaignSpec, raw: Vec<RawCell>) -> CampaignReport {
        let cells = raw
            .iter()
            .map(|c| {
                let speedup_vs_lru = raw
                    .iter()
                    .find(|b| {
                        b.result.policy == "lru"
                            && b.result.workload == c.result.workload
                            && b.config == c.config
                    })
                    .filter(|b| b.result.policy != c.result.policy)
                    .map(|b| c.result.speedup_over(&b.result));
                CampaignCell {
                    workload: c.result.workload.clone(),
                    suite: suite_name(&c.result.workload),
                    config: c.config.clone(),
                    llc_scale: c.llc_scale,
                    policy: c.result.policy.clone(),
                    result: c.result.clone(),
                    speedup_vs_lru,
                }
            })
            .collect();
        CampaignReport { spec: spec.clone(), cells }
    }

    /// Canonical JSON rendering (schema v1): spec echo plus one object per
    /// cell with derived metrics and the exact counters.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::int(REPORT_SCHEMA_VERSION)),
            ("campaign", Json::str(&self.spec.name)),
            ("spec", self.spec.canonical_json()),
            ("cells", Json::Arr(self.cells.iter().map(cell_to_json).collect())),
        ])
    }

    /// Pretty-printed canonical JSON (the on-disk `report.json`).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Per-cell CSV with the headline metrics, one row per grid cell.
    pub fn to_csv(&self) -> String {
        self.cells_table().to_csv()
    }

    /// Per-cell metrics table (also the CSV layout).
    pub fn cells_table(&self) -> Table {
        let mut t = Table::new(
            [
                "workload",
                "suite",
                "config",
                "policy",
                "ipc",
                "l1d_mpki",
                "l2_mpki",
                "llc_mpki",
                "llc_hit_%",
                "dram_reach_%",
                "speedup_vs_lru_%",
            ]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
        );
        for c in &self.cells {
            let r = &c.result;
            t.row(vec![
                c.workload.clone(),
                c.suite.clone(),
                c.config.clone(),
                c.policy.clone(),
                fmt_f(r.ipc(), 4),
                fmt_f(r.mpki_l1d(), 2),
                fmt_f(r.mpki_l2(), 2),
                fmt_f(r.mpki_llc(), 2),
                fmt_f(100.0 * r.llc.hit_rate(), 2),
                fmt_f(100.0 * r.dram_reach_fraction(), 2),
                c.speedup_vs_lru.map(|s| fmt_f(s, 3)).unwrap_or_default(),
            ]);
        }
        t
    }

    /// Figure 3's table: geometric-mean speed-up (%) over LRU per suite,
    /// one column per non-LRU policy, for the cells of `config`.
    ///
    /// Suites appear in the paper's order; a suite absent from the grid is
    /// skipped. Per-workload IPC ratios enter the geomean in spec
    /// (figure) order, so the numbers match the pre-campaign `fig3`
    /// binary digit for digit.
    pub fn speedup_by_suite_table(&self, config: &str) -> Table {
        let policies: Vec<&str> =
            self.spec.policies.iter().map(|p| p.name()).filter(|p| *p != "lru").collect();
        let mut table = Table::new(
            std::iter::once("suite".to_owned())
                .chain(policies.iter().map(|p| (*p).to_owned()))
                .collect(),
        );
        for suite in Suite::ALL {
            let suite_cells: Vec<&CampaignCell> = self
                .cells
                .iter()
                .filter(|c| c.config == config && c.suite == suite.name())
                .collect();
            if suite_cells.is_empty() {
                continue;
            }
            let mut row = vec![suite.name().to_owned()];
            for p in &policies {
                // Per-workload IPC ratios, computed straight from the two
                // cells' IPCs (no round-trip through the percentage, which
                // could differ from the figure binaries by an ulp).
                let ratios: Vec<f64> = suite_cells
                    .iter()
                    .filter(|c| c.policy == *p)
                    .filter_map(|c| {
                        let base = suite_cells
                            .iter()
                            .find(|b| b.policy == "lru" && b.workload == c.workload)?;
                        let base_ipc = base.result.ipc();
                        (base_ipc > 0.0).then(|| c.result.ipc() / base_ipc)
                    })
                    .collect();
                row.push(if ratios.is_empty() {
                    String::new()
                } else {
                    fmt_f(geomean_speedup_percent(&ratios), 2)
                });
            }
            table.row(row);
        }
        table
    }

    /// Figure 2's table: per-workload MPKI at each level under LRU, DRAM
    /// reach and IPC, with the paper's mean row, for the cells of
    /// `config`.
    pub fn mpki_table(&self, config: &str) -> Table {
        let mut table = Table::new(
            ["workload", "L1D", "L2C", "LLC", "dram_reach_%", "ipc"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
        );
        let mut sums = [0.0f64; 3];
        let mut reach_num = 0u64;
        let mut reach_den = 0u64;
        let rows: Vec<&CampaignCell> =
            self.cells.iter().filter(|c| c.config == config && c.policy == "lru").collect();
        for c in &rows {
            let r = &c.result;
            sums[0] += r.mpki_l1d();
            sums[1] += r.mpki_l2();
            sums[2] += r.mpki_llc();
            reach_num += r.llc.demand_misses;
            reach_den += r.l1d.demand_misses;
            table.row(vec![
                c.workload.clone(),
                fmt_f(r.mpki_l1d(), 1),
                fmt_f(r.mpki_l2(), 1),
                fmt_f(r.mpki_llc(), 1),
                fmt_f(100.0 * r.dram_reach_fraction(), 1),
                fmt_f(r.ipc(), 3),
            ]);
        }
        if !rows.is_empty() {
            let k = rows.len() as f64;
            table.row(vec![
                "mean".into(),
                fmt_f(sums[0] / k, 1),
                fmt_f(sums[1] / k, 1),
                fmt_f(sums[2] / k, 1),
                fmt_f(100.0 * reach_num as f64 / reach_den.max(1) as f64, 1),
                String::new(),
            ]);
        }
        table
    }
}

/// The display suite of a workload: ingested `trace:` selectors report
/// as `"external"`, everything else by its benchmark suite.
fn suite_name(workload: &str) -> String {
    if workload.starts_with("trace:") {
        "external".to_owned()
    } else {
        Suite::of_workload(workload).name().to_owned()
    }
}

fn cell_to_json(c: &CampaignCell) -> Json {
    let r = &c.result;
    Json::obj(vec![
        ("workload", Json::str(&c.workload)),
        ("suite", Json::str(&c.suite)),
        ("config", Json::str(&c.config)),
        ("llc_scale", Json::int(c.llc_scale as u64)),
        ("policy", Json::str(&c.policy)),
        ("ipc", Json::num(r.ipc())),
        (
            "mpki",
            Json::obj(vec![
                ("l1d", Json::num(r.mpki_l1d())),
                ("l2", Json::num(r.mpki_l2())),
                ("llc", Json::num(r.mpki_llc())),
            ]),
        ),
        (
            "hit_rate",
            Json::obj(vec![
                ("l1d", Json::num(r.l1d.hit_rate())),
                ("l2", Json::num(r.l2.hit_rate())),
                ("llc", Json::num(r.llc.hit_rate())),
            ]),
        ),
        ("dram_reach_fraction", Json::num(r.dram_reach_fraction())),
        ("speedup_vs_lru_percent", c.speedup_vs_lru.map(Json::num).unwrap_or(Json::Null)),
        ("counters", sim_result_to_json(r)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_core::CacheStats;

    fn raw_cell(
        workload: &str,
        config: &str,
        llc_scale: u32,
        policy: &str,
        cycles: u64,
    ) -> RawCell {
        RawCell {
            config: config.to_owned(),
            llc_scale,
            result: SimResult {
                workload: workload.to_owned(),
                policy: policy.to_owned(),
                instructions: 10_000,
                cycles,
                l1d: CacheStats {
                    demand_accesses: 100,
                    demand_hits: 80,
                    demand_misses: 20,
                    ..Default::default()
                },
                l2: CacheStats::default(),
                llc: CacheStats {
                    demand_accesses: 20,
                    demand_hits: 5,
                    demand_misses: 15,
                    ..Default::default()
                },
                dram: Default::default(),
                llc_diag: String::new(),
            },
        }
    }

    fn spec() -> CampaignSpec {
        CampaignSpec::from_json_str(
            r#"{"name": "t", "workloads": ["bfs.kron"], "policies": ["lru", "srrip"]}"#,
        )
        .unwrap()
    }

    #[test]
    fn speedup_is_relative_to_lru_of_same_workload_and_config() {
        let report = CampaignReport::build(
            &spec(),
            vec![
                raw_cell("bfs.kron", "llc_x1", 1, "lru", 1000),
                raw_cell("bfs.kron", "llc_x1", 1, "srrip", 800),
                raw_cell("bfs.kron", "llc_x2", 2, "lru", 500),
                raw_cell("bfs.kron", "llc_x2", 2, "srrip", 500),
            ],
        );
        assert_eq!(report.cells[0].speedup_vs_lru, None, "lru has no self-speedup");
        assert!((report.cells[1].speedup_vs_lru.unwrap() - 25.0).abs() < 1e-9);
        assert!((report.cells[3].speedup_vs_lru.unwrap() - 0.0).abs() < 1e-9);
        assert_eq!(report.cells[0].suite, "GAPBS");
    }

    #[test]
    fn json_contains_schema_version_and_counters() {
        let report =
            CampaignReport::build(&spec(), vec![raw_cell("bfs.kron", "llc_x1", 1, "lru", 1000)]);
        let j = report.to_json();
        assert_eq!(j.get("schema_version").and_then(Json::as_u64), Some(REPORT_SCHEMA_VERSION));
        let cells = j.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 1);
        let counters = cells[0].get("counters").unwrap();
        assert_eq!(
            counters.get("l1d").unwrap().get("demand_misses").and_then(Json::as_u64),
            Some(20)
        );
        assert_eq!(cells[0].get("speedup_vs_lru_percent"), Some(&Json::Null));
    }

    #[test]
    fn csv_has_one_row_per_cell() {
        let report = CampaignReport::build(
            &spec(),
            vec![
                raw_cell("bfs.kron", "llc_x1", 1, "lru", 1000),
                raw_cell("bfs.kron", "llc_x1", 1, "srrip", 900),
            ],
        );
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("workload,suite,config,policy,ipc"));
    }

    #[test]
    fn suite_speedup_table_matches_geomean_semantics() {
        let report = CampaignReport::build(
            &spec(),
            vec![
                raw_cell("bfs.kron", "llc_x1", 1, "lru", 1000),
                raw_cell("bfs.kron", "llc_x1", 1, "srrip", 800),
            ],
        );
        let t = report.speedup_by_suite_table("llc_x1");
        let csv = t.to_csv();
        assert!(csv.contains("GAPBS,25.00"), "{csv}");
        assert!(!csv.contains("SPEC"), "absent suites are skipped");
    }

    #[test]
    fn mpki_table_appends_mean_row() {
        let report = CampaignReport::build(
            &spec(),
            vec![
                raw_cell("bfs.kron", "llc_x1", 1, "lru", 1000),
                raw_cell("pr.twitter", "llc_x1", 1, "lru", 1000),
            ],
        );
        let t = report.mpki_table("llc_x1");
        assert_eq!(t.len(), 3);
        let csv = t.to_csv();
        assert!(csv.lines().last().unwrap().starts_with("mean,2.0,0.0,1.5,75.0"), "{csv}");
    }
}
