//! # ccsim-campaign
//!
//! Declarative, resumable experiment campaigns for the ccsim suite.
//!
//! The paper's figures come from large (workload x policy x LLC-size)
//! sweeps. This crate turns those ad-hoc sweeps into first-class jobs:
//!
//! * [`CampaignSpec`] — a JSON-parsable description of the full grid
//!   (workload selectors with scale, policies, config variants), so
//!   campaigns can be checked into the repo (`campaigns/*.json`);
//!   selectors cover synthetic workloads, `suite:` expansions, and
//!   external `trace:<path>` files (ChampSim/CVP/CCTR, decoded by
//!   `ccsim-ingest` on first use);
//! * [`TraceCache`] — an on-disk content-addressed store keyed by
//!   (workload, scale, synthesis seed, trace-format version) for
//!   synthetic traces and by (source digest, format, ingest options,
//!   trace-format version) for ingested ones, generating/converting each
//!   trace once and sharing it across every cell, campaign and run;
//! * [`Campaign`] — the engine: per-cell checkpointing to a [`Journal`]
//!   so an interrupted campaign resumes without redoing completed cells,
//!   with cells executed by the lock-free work-stealing executor
//!   ([`ccsim_core::experiment::run_jobs`]); [`Campaign::plan`] predicts
//!   a run cell-by-cell without simulating (`--dry-run`);
//! * [`CampaignReport`] — deterministic JSON / CSV / pretty-table output:
//!   same spec and seed, byte-identical report, interrupted or not —
//!   plus [`ReportDiff`] for cross-campaign regression hunting.
//!
//! The `fig2` / `fig3` binaries in `ccsim-bench` and `ccsim campaign` in
//! the CLI are thin wrappers over this crate; [`spec::presets`] holds
//! their grids.
//!
//! # Example
//!
//! ```
//! use ccsim_campaign::{Campaign, CampaignSpec};
//!
//! let spec = CampaignSpec::from_json_str(r#"{
//!     "name": "demo",
//!     "base_config": "tiny",
//!     "workloads": ["xsbench.small"],
//!     "policies": ["lru", "srrip"]
//! }"#).unwrap();
//! let outcome = Campaign::new(spec).threads(2).run().unwrap();
//! assert_eq!(outcome.report.cells.len(), 2);
//! let json = outcome.report.to_json_string();
//! assert!(json.contains("\"schema_version\": 2"));
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod diff;
pub mod journal;
pub mod json;
pub mod report;
pub mod runner;
pub mod spec;

pub use cache::TraceCache;
pub use diff::{DiffCell, ReportDiff};
pub use journal::{merge_dir, merge_dir_cached, Journal, MergeCursor, MergedJournal};
pub use json::Json;
pub use report::{CampaignCell, CampaignReport, RawCell, REPORT_SCHEMA_VERSION};
pub use runner::{
    record_band_metrics, AcquiredTrace, Campaign, CampaignGrid, CampaignOutcome, CampaignPlan,
    CellStatus, GridCell, LeaseView, PlanCell,
};
pub use spec::{presets, BaseConfig, CampaignSpec};
