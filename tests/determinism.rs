//! Determinism regression tests.
//!
//! Simulating the same seeded synthetic trace twice with the same
//! `PolicyKind` must yield *identical* `SimResult`s — every counter, cycle
//! count and diagnostic string. This guards every future performance
//! refactor (parallel sweeps, batching, policy rewrites) against silently
//! introducing nondeterminism, which would make the paper's figures
//! unreproducible.

use ccsim::prelude::*;
use ccsim::trace::synth::{AccessDistribution, PatternGen, PointerChase, RandomAccess};

fn seeded_trace(seed: u64) -> Trace {
    let mut buf = TraceBuffer::new("determinism");
    RandomAccess::new(0x1000_0000, 1 << 12, 64, 6_000)
        .distribution(AccessDistribution::Zipf(0.8))
        .store_fraction(0.2)
        .seed(seed)
        .emit(&mut buf);
    PointerChase::new(0x4000_0000, 1 << 10, 64).seed(seed ^ 0xABCD).emit(&mut buf);
    buf.finish()
}

#[test]
fn trace_synthesis_is_deterministic() {
    let a = seeded_trace(42);
    let b = seeded_trace(42);
    assert_eq!(a, b, "same seed must synthesize the identical trace");
    let c = seeded_trace(43);
    assert_ne!(a, c, "different seeds should differ");
}

#[test]
fn simulation_is_deterministic_for_every_policy() {
    let trace = seeded_trace(7);
    let config = SimConfig::tiny();
    for kind in PolicyKind::ALL {
        let first = simulate(&trace, &config, kind);
        let second = simulate(&trace, &config, kind);
        assert_eq!(first, second, "{kind}: two runs of the same trace diverged");
        // Catch drift PartialEq could miss if fields are ever skipped:
        // the full Debug rendering (all counters + diagnostics) must match.
        assert_eq!(
            format!("{first:?}"),
            format!("{second:?}"),
            "{kind}: Debug renderings diverged"
        );
    }
}

#[test]
fn simulation_is_deterministic_across_configs() {
    let trace = seeded_trace(11);
    for config in [SimConfig::tiny(), SimConfig::cascade_lake()] {
        let a = simulate(&trace, &config, PolicyKind::Drrip);
        let b = simulate(&trace, &config, PolicyKind::Drrip);
        assert_eq!(a, b);
    }
}
