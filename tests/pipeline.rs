//! End-to-end integration: graph generation -> instrumented kernel ->
//! trace -> simulation -> statistics, checking cross-crate invariants.

use ccsim::prelude::*;
use ccsim::workloads::{GapGraph, GapKernel};

fn quick_trace(kernel: GapKernel, graph: GapGraph) -> Trace {
    GapWorkload { kernel, graph }.trace(GapScale::Quick)
}

/// Every L1D demand miss becomes exactly one L2 demand access, and every
/// L2 demand miss one LLC demand access (fills are eager, so same-block
/// merging at L1/L2 cannot occur).
#[test]
fn miss_traffic_cascades_exactly() {
    let config = SimConfig::cascade_lake();
    for (kernel, graph) in [
        (GapKernel::Bfs, GapGraph::Kron),
        (GapKernel::Pr, GapGraph::Urand),
        (GapKernel::Cc, GapGraph::Web),
    ] {
        let trace = quick_trace(kernel, graph);
        let r = simulate(&trace, &config, PolicyKind::Lru);
        assert_eq!(r.l2.demand_accesses, r.l1d.demand_misses, "{kernel:?}.{graph:?}");
        assert_eq!(r.llc.demand_accesses, r.l2.demand_misses, "{kernel:?}.{graph:?}");
        assert_eq!(r.dram.reads, r.llc.demand_misses, "{kernel:?}.{graph:?}");
    }
}

#[test]
fn instruction_count_flows_from_trace_to_result() {
    let trace = quick_trace(GapKernel::Bfs, GapGraph::Road);
    let r = simulate(&trace, &SimConfig::cascade_lake(), PolicyKind::Srrip);
    assert_eq!(r.instructions, trace.instructions());
    assert_eq!(r.l1d.demand_accesses, trace.len() as u64, "every memory record is one L1D access");
}

#[test]
fn ipc_bounded_by_core_width() {
    let config = SimConfig::cascade_lake();
    let trace = quick_trace(GapKernel::Cc, GapGraph::Twitter);
    let r = simulate(&trace, &config, PolicyKind::Lru);
    assert!(r.ipc() > 0.0);
    assert!(r.ipc() <= config.core.width as f64 + 1e-9);
}

#[test]
fn simulation_is_deterministic() {
    let trace = quick_trace(GapKernel::Sssp, GapGraph::Urand);
    let config = SimConfig::cascade_lake();
    for kind in [PolicyKind::Lru, PolicyKind::Drrip, PolicyKind::Hawkeye, PolicyKind::Mpppb] {
        let a = simulate(&trace, &config, kind);
        let b = simulate(&trace, &config, kind);
        assert_eq!(a, b, "{kind}");
    }
}

#[test]
fn llc_policies_do_not_perturb_upper_levels() {
    let trace = quick_trace(GapKernel::Bc, GapGraph::Kron);
    let config = SimConfig::cascade_lake();
    let base = simulate(&trace, &config, PolicyKind::Lru);
    for kind in PolicyKind::PAPER_POLICIES {
        let r = simulate(&trace, &config, kind);
        assert_eq!(r.l1d, base.l1d, "{kind}");
        assert_eq!(r.l2.demand_accesses, base.l2.demand_accesses, "{kind}");
        assert_eq!(r.l2.demand_misses, base.l2.demand_misses, "{kind}");
    }
}

#[test]
fn fill_accounting_balances() {
    let trace = quick_trace(GapKernel::Pr, GapGraph::Friendster);
    let config = SimConfig::cascade_lake();
    for kind in [PolicyKind::Lru, PolicyKind::Mpppb] {
        let r = simulate(&trace, &config, kind);
        let writeback_fills = r.llc.writeback_accesses - r.llc.writeback_hits;
        assert_eq!(
            r.llc.fills + r.llc.bypasses + r.llc.mshr_merges,
            r.llc.demand_misses + writeback_fills,
            "{kind}: every miss fills, bypasses or merges"
        );
    }
}

#[test]
fn larger_llc_never_increases_misses() {
    let trace = quick_trace(GapKernel::Bfs, GapGraph::Urand);
    let small = simulate(&trace, &SimConfig::cascade_lake(), PolicyKind::Lru);
    let big = simulate(&trace, &SimConfig::cascade_lake().with_llc_scale(8), PolicyKind::Lru);
    // LRU set-associative caches with more sets are not strictly inclusive
    // of smaller ones, but an 8x LLC on the same trace should never lose.
    assert!(big.llc.demand_misses <= small.llc.demand_misses);
    assert!(big.ipc() >= small.ipc() * 0.99);
}
