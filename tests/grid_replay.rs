//! One-pass grid replay equivalence: `simulate_grid` /
//! `simulate_grid_stream` must produce, for every cell of the grid, a
//! `SimResult` indistinguishable from an independent per-cell replay —
//! for arbitrary traces, any mix of policies and LLC scales, and *any*
//! chunk size. Chunking is pure mechanics: cell results must not know
//! how the stream was batched.

use std::io::BufReader;
use std::path::Path;

use ccsim::prelude::*;
use ccsim::trace::synth::{PatternGen, RandomAccess, SequentialStream};
use ccsim::trace::{write_trace, AccessKind, TraceReader, TraceRecord};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (0u64..1 << 40, 0u64..1 << 44, 1u8..=8, any::<bool>(), 0u16..2000).prop_map(
        |(pc, vaddr, size, store, nonmem)| TraceRecord {
            pc,
            vaddr,
            size,
            kind: if store { AccessKind::Store } else { AccessKind::Load },
            nonmem_before: nonmem,
        },
    )
}

fn arb_trace(max_len: usize) -> impl Strategy<Value = Trace> {
    (proptest::collection::vec(arb_record(), 0..max_len), 0u64..1000)
        .prop_map(|(records, trailing)| Trace::from_parts("prop", records, trailing))
}

/// A grid cell drawn from the full policy set and LLC scales 1/2/4.
fn arb_cell() -> impl Strategy<Value = (SimConfig, PolicyKind)> {
    (0usize..PolicyKind::ALL.len(), 0u32..3).prop_map(|(policy_idx, scale_log2)| {
        (SimConfig::tiny().with_llc_scale(1 << scale_log2), PolicyKind::ALL[policy_idx])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The lockstep driver equals per-cell replay cell for cell —
    /// arbitrary traces, grids of 1..6 mixed cells, and chunk sizes from
    /// 1 record up to far beyond the trace length (0 = default).
    #[test]
    fn grid_replay_equals_per_cell_replay(
        trace in arb_trace(300),
        cells in proptest::collection::vec(arb_cell(), 1..6),
        chunk_sel in 0usize..64,
    ) {
        // 0 = the default chunk, 1 = record-at-a-time, 2 = far beyond
        // the trace length; everything else is a small explicit chunk.
        let chunk_records = match chunk_sel { 0 => 0, 1 => 1, 2 => 1 << 20, n => n };
        let grid = simulate_grid(&trace, &cells, chunk_records);
        prop_assert_eq!(grid.len(), cells.len());
        for ((config, policy), result) in cells.iter().zip(&grid) {
            let reference = simulate(&trace, config, *policy);
            prop_assert_eq!(result, &reference);
        }
    }

    /// The streaming front end (`TraceReader` → chunks) equals the
    /// in-memory driver, so the campaign's file-backed one-pass path
    /// inherits the equivalence.
    #[test]
    fn grid_stream_equals_grid_in_memory(
        trace in arb_trace(200),
        cells in proptest::collection::vec(arb_cell(), 1..5),
        chunk_records in 0usize..48,
    ) {
        let mut bytes = Vec::new();
        write_trace(&trace, &mut bytes).unwrap();
        let reader = TraceReader::new(&bytes[..]).unwrap();
        let streamed = simulate_grid_stream(reader, &cells, chunk_records).unwrap();
        let in_memory = simulate_grid(&trace, &cells, chunk_records);
        prop_assert_eq!(streamed, in_memory);
    }

    /// Duplicate cells in one grid stay independent: each copy's engine
    /// must evolve exactly as if it ran alone.
    #[test]
    fn duplicated_cells_do_not_interfere(
        trace in arb_trace(200),
        cell in arb_cell(),
    ) {
        let cells = vec![cell, cell, cell];
        let grid = simulate_grid(&trace, &cells, 7);
        let reference = simulate(&trace, &cell.0, cell.1);
        for result in &grid {
            prop_assert_eq!(result, &reference);
        }
    }
}

/// Regression: one-pass grid replay of the pinned ingest golden fixture
/// (a real converted ChampSim trace) on the full platform model matches
/// per-cell replay bit for bit — across a policies × LLC-scales grid and
/// three chunkings, streamed straight from the fixture file like a
/// campaign cell would be.
#[test]
fn golden_ingest_fixture_grid_replays_identically() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ingest_golden_v1.cctr");
    let bytes = std::fs::read(&path).unwrap();
    let trace = ccsim::trace::read_trace(&bytes[..]).unwrap();
    assert!(!trace.is_empty(), "golden fixture must carry records");

    let mut cells: Vec<(SimConfig, PolicyKind)> = Vec::new();
    for scale in [1u32, 4] {
        let config = SimConfig::cascade_lake().with_llc_scale(scale);
        for policy in PolicyKind::ALL {
            cells.push((config, policy));
        }
    }
    let reference: Vec<SimResult> =
        cells.iter().map(|(config, policy)| simulate(&trace, config, *policy)).collect();

    for chunk_records in [0usize, 1, 1000] {
        let grid = simulate_grid(&trace, &cells, chunk_records);
        assert_eq!(grid, reference, "in-memory grid diverged at chunk {chunk_records}");
        let reader = TraceReader::new(BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
        let streamed = simulate_grid_stream(reader, &cells, chunk_records).unwrap();
        assert_eq!(streamed, reference, "streamed grid diverged at chunk {chunk_records}");
    }

    // The replay is real work, not a stub: the golden trace must reach
    // the LLC. (The fixture is small enough that it never *evicts*, so
    // scales and policies agree on it — the proptests above cover
    // divergent grids.)
    assert!(reference[0].llc.demand_misses > 0, "golden fixture never reached the LLC");
}

/// Differential golden for the tag-store layout: a deterministic
/// eviction-heavy trace replayed through **all 12 policies** on a
/// mixed-scale grid must reproduce the committed per-cell counter table
/// exactly. The fixture was blessed from the AoS `Vec<CacheLine>` engine
/// immediately before the SoA tag-array refactor, so any drift in
/// probe/fill/victim behaviour — however subtle — fails here at the
/// first diverging counter. Rebless with
/// `CCSIM_BLESS=1 cargo test --test grid_replay` only for an intentional
/// behavioural change.
#[test]
fn tag_store_differential_golden_pins_all_policies() {
    use std::fmt::Write as _;

    let mut buf = TraceBuffer::new("tag-golden");
    // Two laps over 2x the scaled-LLC footprint force evictions (and
    // dirty writebacks) at every level and scale...
    SequentialStream::new(0x1000_0000, 8 * 1024).stride(64).store_every(7).laps(3).emit(&mut buf);
    // ...and a seeded random mix drives victim queries, bypass decisions
    // and writeback-bypass overrides across set-index entropy.
    RandomAccess::new(0x8000_0000, 512, 64, 20_000)
        .store_fraction(0.25)
        .seed(0xC0FFEE)
        .emit(&mut buf);
    let trace = buf.finish();

    let mut cells: Vec<(SimConfig, PolicyKind)> = Vec::new();
    for scale in [1u32, 2, 4] {
        let config = SimConfig::tiny().with_llc_scale(scale);
        for policy in PolicyKind::ALL {
            cells.push((config, policy));
        }
    }
    let results = simulate_grid(&trace, &cells, 0);

    let mut table = String::new();
    for ((config, policy), r) in cells.iter().zip(&results) {
        writeln!(
            table,
            "{policy} x{} cycles={} llc_miss={} llc_hit={} evict={} wb_out={} bypass={} \
             wb_override={}",
            config.llc.sets / SimConfig::tiny().llc.sets,
            r.cycles,
            r.llc.demand_misses,
            r.llc.demand_hits,
            r.llc.evictions,
            r.llc.writebacks_out,
            r.llc.bypasses,
            r.llc.writeback_bypass_overrides,
        )
        .unwrap();
    }

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/tag_store_golden_v1.txt");
    if std::env::var_os("CCSIM_BLESS").is_some() {
        std::fs::write(&path, &table).unwrap();
    }
    let pinned = std::fs::read_to_string(&path)
        .expect("fixture missing; run with CCSIM_BLESS=1 to create it");
    assert_eq!(table, pinned, "tag-store behaviour drifted from the pre-SoA golden");
}

/// The `GridReplay` driver itself is reusable across explicit chunk
/// feeding: stepping record slices by hand then finishing must equal the
/// one-shot helpers (this is the API `ccsim-campaign` builds on).
#[test]
fn manual_chunk_feeding_matches_one_shot_helpers() {
    let mut buf = TraceBuffer::new("manual");
    for i in 0..5000u64 {
        if i % 3 == 0 {
            buf.store(0x400 + i % 13, 0x1000 + 64 * (i % 700), 8);
        } else {
            buf.load(0x400 + i % 13, 0x2000 + 64 * (i % 211), 8);
        }
    }
    let trace = buf.finish();
    let cells = vec![(SimConfig::tiny(), PolicyKind::Lru), (SimConfig::tiny(), PolicyKind::Drrip)];

    let mut driver = GridReplay::new(&cells, 0);
    assert_eq!(driver.cells(), 2);
    for chunk in trace.records().chunks(333) {
        driver.step_records(chunk);
    }
    let manual = driver.finish(trace.name(), trace.trailing_nonmem());
    assert_eq!(manual, simulate_grid(&trace, &cells, 333));
}
