//! Pins the `ccsim bench --json` output schema against
//! `tests/fixtures/bench_v1.json` (fixture name is historical; the
//! document carries [`BENCH_SCHEMA_VERSION`]), and the
//! `ccsim bench --grid --json` schema against
//! `tests/fixtures/bench_v2.json`.
//!
//! Throughput *values* are machine-dependent, so unlike the campaign
//! report fixture these are compared **structurally**: same keys, same
//! order, same value kinds. Each fixture was recorded from a real run;
//! regenerate with `CCSIM_BLESS=1 cargo test --test bench` after an
//! intentional schema change (and bump
//! [`ccsim_bench::throughput::BENCH_SCHEMA_VERSION`] or
//! [`ccsim_bench::gridbench::GRID_BENCH_SCHEMA_VERSION`]).

use std::path::Path;

use ccsim::campaign::Json;
use ccsim::policies::PolicyKind;
use ccsim_bench::gridbench::{run_grid_bench, GridBenchOptions, GRID_BENCH_SCHEMA_VERSION};
use ccsim_bench::throughput::{run_throughput, ThroughputOptions, BENCH_SCHEMA_VERSION};

/// Canonical structural signature of a JSON value: object keys in order,
/// array element shape, and leaf kinds. Numbers are treated as nullable
/// (`alloc_check.allocs_per_record` is `null` when no counting allocator
/// is installed, as in this test binary).
fn shape(v: &Json) -> String {
    match v {
        Json::Null | Json::Num(_) => "num?".into(),
        Json::Bool(_) => "bool".into(),
        Json::Str(_) => "str".into(),
        Json::Arr(items) => {
            let first = items.first().map(shape).unwrap_or_default();
            for (i, item) in items.iter().enumerate() {
                assert_eq!(shape(item), first, "array element {i} shape diverges");
            }
            format!("[{first}]")
        }
        Json::Obj(pairs) => {
            let fields: Vec<String> =
                pairs.iter().map(|(k, v)| format!("{k}:{}", shape(v))).collect();
            format!("{{{}}}", fields.join(","))
        }
    }
}

#[test]
fn bench_json_schema_matches_pinned_fixture() {
    let options = ThroughputOptions {
        quick: true,
        policies: vec![PolicyKind::Lru, PolicyKind::Srrip],
        warmup: 0,
        reps: 1,
    };
    let report = run_throughput(&options);
    assert_eq!(report.cells.len(), 3 * 2, "3 patterns x 2 policies");
    let json = report.to_json();

    // Summary fields CI greps on.
    assert_eq!(json.get("ccsim_bench").and_then(Json::as_u64), Some(BENCH_SCHEMA_VERSION));
    assert_eq!(json.get("hot_path").and_then(Json::as_str), Some(ccsim::core::HOT_PATH));
    let status = json.get("alloc_check").unwrap().get("status").unwrap().as_str().unwrap();
    assert!(["pass", "fail", "unavailable"].contains(&status), "{status}");

    let fixture_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bench_v1.json");
    if std::env::var_os("CCSIM_BLESS").is_some() {
        std::fs::write(&fixture_path, format!("{}\n", json.to_pretty().trim_end())).unwrap();
    }
    let fixture = std::fs::read_to_string(&fixture_path)
        .expect("fixture missing; run with CCSIM_BLESS=1 to create it");
    let pinned = Json::parse(&fixture).unwrap();
    assert_eq!(
        shape(&json),
        shape(&pinned),
        "the bench --json schema changed; bump BENCH_SCHEMA_VERSION and rebless the fixture"
    );

    // The committed seed baseline predates schema v2 and is never
    // re-measured (it is this machine-independent anchor perf gates
    // diff against), so compare it against the pinned schema *minus*
    // the later additions: the cells and summary fields gates consume
    // must still line up exactly. BENCH_soa.json was recorded at v3 and
    // is compared in full.
    let post_v1 = ["wall_clock_breakdown", "obs_overhead", "probe_scan"];
    let strip = |v: &Json| {
        let Json::Obj(pairs) = v else { panic!("bench document must be an object") };
        Json::Obj(pairs.iter().filter(|(k, _)| !post_v1.contains(&k.as_str())).cloned().collect())
    };
    let covers_eviction_heavy = |doc: &Json, which: &str| {
        assert!(
            doc.get("cells")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .any(|c| c.get("pattern").and_then(Json::as_str)
                    == Some(ccsim_bench::throughput::EVICTION_HEAVY_PATTERN)),
            "{which} baseline must cover the eviction-heavy microbench"
        );
    };
    let seed =
        std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_seed.json"))
            .expect("BENCH_seed.json baseline missing");
    let seed = Json::parse(&seed).unwrap();
    assert_eq!(
        shape(&strip(&seed)),
        shape(&strip(&pinned)),
        "BENCH_seed.json drifted from the pinned schema"
    );
    covers_eviction_heavy(&seed, "seed");

    let soa = std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_soa.json"))
        .expect("BENCH_soa.json baseline missing");
    let soa = Json::parse(&soa).unwrap();
    assert_eq!(shape(&soa), shape(&pinned), "BENCH_soa.json drifted from the pinned schema");
    assert_eq!(
        soa.get("hot_path").and_then(Json::as_str),
        Some(ccsim::core::HOT_PATH),
        "BENCH_soa.json must be recorded at the current hot-path generation"
    );
    covers_eviction_heavy(&soa, "soa");
}

#[test]
fn grid_bench_json_schema_matches_pinned_fixture_and_reports_pass_counts() {
    let options = GridBenchOptions {
        quick: true,
        policies: vec![PolicyKind::Lru, PolicyKind::Srrip],
        llc_scales: vec![1, 2],
        warmup: 0,
        reps: 1,
        chunk_records: 0,
    };
    let report = run_grid_bench(&options).unwrap();
    assert_eq!(report.cells, 4, "2 policies x 2 LLC scales");
    assert_eq!(report.workloads.len(), 3);
    // Grid mode's headline accounting: per-cell replay makes one full
    // trace pass per cell, the one-pass driver exactly one — and both
    // modes must agree bit for bit on every cell result.
    for w in &report.workloads {
        assert_eq!(w.per_cell.passes, report.cells, "{}: per-cell pass count", w.workload);
        assert_eq!(w.grid.passes, 1, "{}: grid pass count", w.workload);
        assert!(w.identical, "{}: modes diverged", w.workload);
        assert!(w.speedup > 0.0);
    }

    let json = report.to_json();
    // Summary fields CI greps on.
    assert_eq!(json.get("ccsim_bench").and_then(Json::as_u64), Some(GRID_BENCH_SCHEMA_VERSION));
    assert_eq!(json.get("mode").and_then(Json::as_str), Some("grid"));
    assert_eq!(json.get("hot_path").and_then(Json::as_str), Some(ccsim::core::HOT_PATH));
    let grid = json.get("grid").unwrap();
    assert_eq!(grid.get("cells").and_then(Json::as_u64), Some(4));

    let fixture_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bench_v2.json");
    if std::env::var_os("CCSIM_BLESS").is_some() {
        std::fs::write(&fixture_path, format!("{}\n", json.to_pretty().trim_end())).unwrap();
    }
    let fixture = std::fs::read_to_string(&fixture_path)
        .expect("fixture missing; run with CCSIM_BLESS=1 to create it");
    let pinned = Json::parse(&fixture).unwrap();
    assert_eq!(
        shape(&json),
        shape(&pinned),
        "the bench --grid --json schema changed; bump GRID_BENCH_SCHEMA_VERSION and rebless \
         the fixture"
    );
    // The pinned fixture was recorded from a real run and must carry the
    // same accounting the live report just asserted.
    for w in pinned.get("workloads").unwrap().as_array().unwrap() {
        let cells = w.get("cells").and_then(Json::as_u64).unwrap();
        let per_cell_passes =
            w.get("per_cell").unwrap().get("passes").and_then(Json::as_u64).unwrap();
        assert_eq!(per_cell_passes, cells);
        assert_eq!(w.get("grid").unwrap().get("passes").and_then(Json::as_u64), Some(1));
    }
}
