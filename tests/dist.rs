//! Distributed-campaign integration tests: band-lease-arbitrated
//! sharding, mid-band crash/resume healing, and byte-identical report
//! assembly.
//!
//! Workers claim **workload bands** (`band:<workload>` — every pending
//! cell sharing a trace, simulated in one lockstep pass) rather than
//! individual cells, but the distribution contract is unchanged:
//! however many workers drain the grid, in whatever interleaving, with
//! however many crashes and reclaims along the way, `assemble` produces
//! the same bytes as one uninterrupted single-process run — or fails
//! loudly rather than guess.

use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

use ccsim::campaign::journal::merge_dir;
use ccsim::campaign::{Campaign, CampaignSpec, Journal};
use ccsim::dist::{
    assemble, band_lease_id, cell_lease_views, leases_dir, run_worker, sanitize_worker_id, status,
    Claim, LeaseDir, WorkerOptions,
};

/// 2 workloads x 2 policies x 2 LLC sizes on the tiny platform: enough
/// cells to shard meaningfully, fast enough for debug builds.
const SPEC: &str = r#"{
    "name": "dist_itest",
    "scale": "quick",
    "base_config": "tiny",
    "llc_scales": [1, 2],
    "workloads": ["xsbench.small", "spec.stack"],
    "policies": ["lru", "srrip"]
}"#;

fn spec() -> CampaignSpec {
    CampaignSpec::from_json_str(SPEC).unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccsim_dist_itest_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The single-process reference bytes for the grid.
fn solo_report_json() -> String {
    Campaign::new(spec()).threads(4).run().unwrap().report.to_json_string()
}

#[test]
fn one_worker_drains_the_grid_and_assembles_identically() {
    let dir = temp_dir("one");
    let shared = dir.join("shared");
    let outcome = run_worker(&spec(), &shared, &WorkerOptions::new("w1")).unwrap();
    assert!(outcome.campaign_done);
    assert_eq!(outcome.completed, 8);
    assert_eq!(outcome.reclaimed, 0);

    let assembled = assemble(&spec(), &shared).unwrap();
    assert_eq!(assembled.report.to_json_string(), solo_report_json());
    assert_eq!(assembled.entries, 8, "no duplicated cell simulations");
    assert_eq!(assembled.duplicates, 0);
    assert_eq!(assembled.segments, vec![("journal.w1.jsonl".to_owned(), 8)]);

    // All leases were released on completion.
    assert!(LeaseDir::open(leases_dir(&shared)).unwrap().scan().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Two live workers racing over band-granularity leases: each band is
/// simulated by exactly one of them, so the union covers the grid with
/// zero duplicated cells.
#[test]
fn two_concurrent_workers_share_the_grid_without_duplicates() {
    let dir = temp_dir("two");
    let shared = dir.join("shared");
    let (a, b) = std::thread::scope(|s| {
        let shared_a = shared.clone();
        let shared_b = shared.clone();
        let ta = s.spawn(move || {
            let mut opts = WorkerOptions::new("alpha");
            opts.threads = 2;
            opts.backoff = Duration::from_millis(20);
            run_worker(&spec(), &shared_a, &opts).unwrap()
        });
        let tb = s.spawn(move || {
            let mut opts = WorkerOptions::new("beta");
            opts.threads = 2;
            opts.backoff = Duration::from_millis(20);
            run_worker(&spec(), &shared_b, &opts).unwrap()
        });
        (ta.join().unwrap(), tb.join().unwrap())
    });
    assert!(a.campaign_done && b.campaign_done);
    assert_eq!(a.completed + b.completed, 8, "every cell done exactly once across workers");

    let assembled = assemble(&spec(), &shared).unwrap();
    assert_eq!(assembled.report.to_json_string(), solo_report_json());
    assert_eq!(assembled.entries, 8, "zero duplicated cell simulations");
    assert_eq!(assembled.duplicates, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Kill-a-worker-mid-band drill: a worker claims a workload band,
/// journals one of its four cells (a real result), dies mid-append on
/// the next (torn journal line) and never releases. While the band
/// lease is live every pending cell it covers reports leased; once it
/// expires they report stale; and a healer must reclaim the band with a
/// bumped epoch, **resume mid-band from the journaled cells** (re-running
/// only the seven missing ones), and assemble bytes identical to the
/// single-process run.
#[test]
fn crashed_worker_band_lease_expires_and_a_second_worker_resumes_mid_band() {
    let dir = temp_dir("crash");
    let shared = dir.join("shared");
    let spec = spec();
    let digest = spec.digest();
    std::fs::create_dir_all(&shared).unwrap();

    // The victim claims the whole xsbench.small band (4 cells), journals
    // its first cell's real result, then "crashes" mid-append on the
    // second — leaked claim, torn tail, no release.
    let campaign = Campaign::new(spec.clone());
    let grid = campaign.grid().unwrap();
    let victim_cell = grid.cells_of("xsbench.small").next().unwrap();
    let leases = LeaseDir::open(leases_dir(&shared)).unwrap();
    let band = band_lease_id("xsbench.small");
    let guard = match leases.claim(&band, "dead", Duration::from_secs(60)).unwrap() {
        Claim::Acquired(g) => g,
        Claim::Held(h) => panic!("fresh dir already held: {h:?}"),
    };
    std::mem::forget(guard); // crash: no release, no renewal
    {
        let trace = campaign.acquire("xsbench.small").unwrap();
        let result = trace
            .simulate_cell(&grid.configs[victim_cell.config_index].1, victim_cell.policy)
            .unwrap();
        let mut j = Journal::open_segment(&shared, "dead", &spec.name, &digest).unwrap();
        j.record(&victim_cell.id, &result).unwrap();
        drop(j);
        let torn = "{\"cell\":\"xsbench.small|llc_x2|lru\",\"result\":{\"workload\":\"xs";
        let seg = Journal::segment_path(&shared, "dead");
        let mut text = std::fs::read_to_string(&seg).unwrap();
        text.push_str(torn);
        std::fs::write(&seg, text).unwrap();
    }

    // While the band lease is live, a peer cannot claim the band, and
    // status/plan count every *pending* cell it covers as leased (3 of
    // the band's 4 — the journaled one is completed, not leased).
    let st = status(&spec, &shared).unwrap();
    assert_eq!((st.completed, st.leased, st.stale), (1, 3, 0));
    assert!(matches!(
        leases.claim(&band, "other", Duration::from_secs(60)).unwrap(),
        Claim::Held(h) if h.worker == "dead"
    ));
    let plan = Campaign::new(spec.clone())
        .mark_completed(merge_dir(&shared, &spec.name, &digest).unwrap().completed.into_keys())
        .leases(cell_lease_views(&grid, &leases.views()))
        .plan()
        .unwrap();
    assert_eq!(plan.counts().4, 3, "dry run predicts the live band lease per pending cell");

    // The holder dies: backdate the band lease past its TTL.
    let lease_path = leases.path_for(&band);
    std::fs::File::options()
        .write(true)
        .open(&lease_path)
        .unwrap()
        .set_modified(SystemTime::now() - Duration::from_secs(3600))
        .unwrap();
    let st = status(&spec, &shared).unwrap();
    assert_eq!((st.leased, st.stale), (0, 3), "expired band lease reported stale per cell");
    assert_eq!(st.stale_leases.len(), 1, "one stale lease file covers the three cells");
    assert_eq!(st.stale_leases[0].worker, "dead");
    assert_eq!(st.stale_leases[0].cell, band);

    // A healer worker reclaims the band and finishes everything — but
    // does NOT redo the victim's journaled cell.
    let healer = run_worker(&spec, &shared, &WorkerOptions::new("healer")).unwrap();
    assert!(healer.campaign_done);
    assert_eq!(healer.completed, 7, "mid-band resume: the journaled cell is not re-run");
    assert_eq!(healer.reclaimed, 1, "exactly the victim's band was reclaimed");

    let assembled = assemble(&spec, &shared).unwrap();
    assert_eq!(assembled.report.to_json_string(), solo_report_json());
    assert_eq!(assembled.duplicates, 0);
    // The dead worker's segment contributes its one journaled cell; the
    // torn tail is dropped.
    assert!(assembled.segments.contains(&("journal.dead.jsonl".to_owned(), 1)));
    assert!(assembled.segments.contains(&("journal.healer.jsonl".to_owned(), 7)));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn partial_grids_refuse_to_assemble_and_report_progress() {
    let dir = temp_dir("partial");
    let shared = dir.join("shared");
    let mut opts = WorkerOptions::new("limited");
    opts.max_cells = Some(3);
    let outcome = run_worker(&spec(), &shared, &opts).unwrap();
    assert_eq!(outcome.completed, 3);
    assert!(!outcome.campaign_done);

    let err = assemble(&spec(), &shared).unwrap_err();
    assert!(err.contains("5 of 8 cells"), "{err}");

    let st = status(&spec(), &shared).unwrap();
    assert_eq!((st.cells_total, st.completed, st.unclaimed), (8, 3, 5));
    assert_eq!(st.workers.len(), 1);
    assert_eq!(st.workers[0].worker, "limited");
    assert_eq!(st.workers[0].completed, 3);
    let rendered = st.render();
    assert!(rendered.contains("3 completed"), "{rendered}");

    // A second worker whose limit exactly covers the remainder must
    // still notice the campaign finished under its last batch.
    let mut rest_opts = WorkerOptions::new("finisher");
    rest_opts.max_cells = Some(5);
    let rest = run_worker(&spec(), &shared, &rest_opts).unwrap();
    assert!(rest.campaign_done, "a cell limit that drains the grid reports completion");
    assert_eq!(rest.completed, 5);
    let assembled = assemble(&spec(), &shared).unwrap();
    assert_eq!(assembled.report.to_json_string(), solo_report_json());
    assert_eq!(assembled.entries, 8);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `max_cells` smaller than a band truncates the band: the worker
/// claims the whole workload's lease but simulates and journals only
/// its budget, releasing the rest for any peer. (An 8-cell single-
/// workload grid with a budget of 4 leaves half pending and unclaimed.)
#[test]
fn a_cell_budget_truncates_a_band_leaving_the_rest_pending() {
    let dir = temp_dir("cap");
    let shared = dir.join("shared");
    let spec = CampaignSpec::from_json_str(
        r#"{"name": "dist_cap", "scale": "quick", "base_config": "tiny",
            "llc_scales": [1, 2],
            "workloads": ["xsbench.small"],
            "policies": ["lru", "srrip", "drrip", "ship"]}"#,
    )
    .unwrap();
    let mut opts = WorkerOptions::new("capped");
    opts.max_cells = Some(4); // half the single 8-cell band
    let first = run_worker(&spec, &shared, &opts).unwrap();
    assert_eq!(first.completed, 4);
    // After the truncated band, half the grid is pending and fully
    // unclaimed — a peer starting now has cells to take immediately.
    let st = status(&spec, &shared).unwrap();
    assert_eq!((st.completed, st.leased, st.unclaimed), (4, 0, 4));
    let rest = run_worker(&spec, &shared, &WorkerOptions::new("peer")).unwrap();
    assert!(rest.campaign_done);
    assert_eq!(rest.completed, 4);
    assert_eq!(
        assemble(&spec, &shared).unwrap().report.to_json_string(),
        Campaign::new(spec).threads(4).run().unwrap().report.to_json_string()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A worker that crashes *between* journaling its band and releasing
/// the lease leaves a stale lease covering only completed cells. It
/// blocks nothing, so status must neither count it nor list it — the
/// summary line and the stale-lease listing can never contradict each
/// other. The same holds for a stale per-cell lease (older tooling) on
/// a completed cell.
#[test]
fn stale_leases_covering_only_completed_cells_are_not_reported() {
    let dir = temp_dir("stale_done");
    let shared = dir.join("shared");
    run_worker(&spec(), &shared, &WorkerOptions::new("w")).unwrap();

    let leases = LeaseDir::open(leases_dir(&shared)).unwrap();
    for id in [band_lease_id("xsbench.small"), "spec.stack|llc_x1|lru".to_owned()] {
        let guard = match leases.claim(&id, "crashed-late", Duration::from_secs(60)).unwrap() {
            Claim::Acquired(g) => g,
            Claim::Held(h) => panic!("completed campaign should hold no leases: {h:?}"),
        };
        std::mem::forget(guard);
        std::fs::File::options()
            .write(true)
            .open(leases.path_for(&id))
            .unwrap()
            .set_modified(SystemTime::now() - Duration::from_secs(3600))
            .unwrap();
    }

    let st = status(&spec(), &shared).unwrap();
    assert_eq!((st.completed, st.leased, st.stale, st.unclaimed), (8, 0, 0, 0));
    assert!(st.stale_leases.is_empty(), "leases on completed cells must not be listed");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn conflicting_worker_results_fail_assembly_loudly() {
    let dir = temp_dir("conflict");
    let shared = dir.join("shared");
    run_worker(&spec(), &shared, &WorkerOptions::new("honest")).unwrap();

    // A corrupted (or mixed-binary) segment disagrees on one cell.
    let victim = "xsbench.small|llc_x1|lru";
    let seg = Journal::segment_path(&shared, "honest");
    let text = std::fs::read_to_string(&seg).unwrap();
    let line = text.lines().find(|l| l.contains(victim)).unwrap();
    // Prepending a digit to the cycle count keeps the JSON valid but
    // changes the result.
    let forged = line.replace("\"cycles\":", "\"cycles\":1");
    std::fs::write(
        Journal::segment_path(&shared, "liar"),
        format!("{}\n{}\n", text.lines().next().unwrap(), forged),
    )
    .unwrap();

    let err = assemble(&spec(), &shared).unwrap_err();
    assert!(err.contains("conflicting results"), "{err}");
    assert!(err.contains(victim), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checked_in_dist_spec_parses_and_matches_the_ci_smoke() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let spec = CampaignSpec::from_file(&root.join("campaigns/dist_quick.json")).unwrap();
    assert_eq!(spec.name, "dist_quick");
    assert_eq!(spec.expand_workloads().unwrap().len(), 3);
    assert_eq!(spec.policies.len(), 4);
    assert_eq!(spec.llc_scales, vec![1, 2]);
    // The CI dist-smoke step greps for this exact cell count.
    let grid = Campaign::new(spec).grid().unwrap();
    assert_eq!(grid.cells.len(), 24);
}

#[test]
fn worker_ids_sanitize_to_lease_and_segment_safe_names() {
    assert_eq!(sanitize_worker_id("host-1"), "host-1");
    assert_eq!(sanitize_worker_id("a b/c:d"), "a-b-c-d");
    assert_eq!(sanitize_worker_id(""), "worker");
}
