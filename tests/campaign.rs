//! Campaign subsystem integration tests: determinism, trace caching,
//! journal resume, and the pinned JSON report schema.
//!
//! The determinism contract mirrors `tests/determinism.rs` one level up:
//! the same spec and seed must yield a *byte-identical* JSON report, and
//! a campaign that is killed part-way and resumed from its journal must
//! produce the same bytes as an uninterrupted run.

use ccsim::campaign::{presets, Campaign, CampaignReport, CampaignSpec, RawCell, TraceCache};
use ccsim::core::{CacheStats, DramStats};
use ccsim::prelude::*;
use ccsim::workloads::SuiteScale;

use std::path::{Path, PathBuf};

/// A small but non-trivial grid: 2 workloads x 2 policies x 2 LLC sizes,
/// on the tiny platform so simulation stays fast in debug builds.
const SPEC: &str = r#"{
    "name": "itest",
    "scale": "quick",
    "base_config": "tiny",
    "llc_scales": [1, 2],
    "workloads": ["xsbench.small", "spec.stack"],
    "policies": ["lru", "srrip"]
}"#;

fn spec() -> CampaignSpec {
    CampaignSpec::from_json_str(SPEC).unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ccsim_campaign_itest_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn same_spec_and_seed_yield_byte_identical_reports() {
    let a = Campaign::new(spec()).threads(4).run().unwrap();
    let b = Campaign::new(spec()).threads(1).run().unwrap();
    assert_eq!(
        a.report.to_json_string(),
        b.report.to_json_string(),
        "thread count must not leak into the report"
    );
    assert_eq!(a.report.to_csv(), b.report.to_csv());
    assert_eq!(a.cells_total, 8);
}

#[test]
fn second_run_hits_the_trace_cache_without_regenerating() {
    let dir = temp_dir("cache");
    let first = Campaign::new(spec())
        .threads(4)
        .cache(TraceCache::new(dir.join("traces")).unwrap())
        .run()
        .unwrap();
    assert_eq!((first.cache_hits, first.cache_misses), (0, 2), "one miss per workload");

    // Poison-pill check: cached traces must be read, not regenerated. We
    // prove it by counting cache files and by the hit/miss counters of a
    // second run over the same cache directory.
    let cctr_files = std::fs::read_dir(dir.join("traces"))
        .unwrap()
        .filter(|e| e.as_ref().unwrap().path().extension().is_some_and(|x| x == "cctr"))
        .count();
    assert_eq!(cctr_files, 2);

    let second = Campaign::new(spec())
        .threads(4)
        .cache(TraceCache::new(dir.join("traces")).unwrap())
        .run()
        .unwrap();
    assert_eq!((second.cache_hits, second.cache_misses), (2, 0), "no regeneration");
    assert_eq!(first.report.to_json_string(), second.report.to_json_string());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn killed_then_resumed_campaign_reproduces_the_uninterrupted_report() {
    let dir = temp_dir("resume");
    let journal = dir.join("journal.jsonl");
    let uninterrupted = Campaign::new(spec()).threads(2).run().unwrap();

    // Run once with a journal to produce the full cell log...
    let full = Campaign::new(spec()).threads(2).journal(&journal).run().unwrap();
    assert_eq!(full.cells_resumed, 0);
    let text = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1 + 8, "header plus one line per cell");

    // ...then simulate a kill after three completed cells plus a torn
    // fourth line (the write the "kill" interrupted).
    let half: String = lines[..4].join("\n") + "\n" + &lines[4][..lines[4].len() / 2];
    std::fs::write(&journal, half).unwrap();

    let resumed = Campaign::new(spec()).threads(2).journal(&journal).run().unwrap();
    assert_eq!(resumed.cells_resumed, 3, "three journaled cells skip simulation");
    assert_eq!(
        resumed.report.to_json_string(),
        uninterrupted.report.to_json_string(),
        "resume must not change a single byte of the report"
    );
    assert_eq!(resumed.report.to_csv(), uninterrupted.report.to_csv());

    // A third run resumes everything and simulates nothing.
    let third = Campaign::new(spec()).threads(2).journal(&journal).run().unwrap();
    assert_eq!(third.cells_resumed, 8);
    assert_eq!(third.report.to_json_string(), uninterrupted.report.to_json_string());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checked_in_specs_parse_and_fig3_matches_the_preset() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let fig3 = CampaignSpec::from_file(&root.join("campaigns/fig3_quick.json")).unwrap();
    assert_eq!(
        fig3,
        presets::fig3_spec(SuiteScale::Quick),
        "campaigns/fig3_quick.json must stay in sync with the fig3 binary's grid"
    );
    assert_eq!(fig3.expand_workloads().unwrap().len(), 8 + 3 + 5 + 35);

    let sweep = CampaignSpec::from_file(&root.join("campaigns/llc_sweep_quick.json")).unwrap();
    assert_eq!(sweep.llc_scales, vec![1, 2, 4]);
    assert_eq!(sweep.configs().len(), 3);
    assert!(sweep.policies.contains(&PolicyKind::Hawkeye));

    // The ingest demo spec references the checked-in ChampSim fixture by
    // a repo-root-relative path; keep the selector and fixture in sync.
    let ingest =
        CampaignSpec::from_file(&root.join("campaigns/ingest_fixture_quick.json")).unwrap();
    let workloads = ingest.expand_workloads().unwrap();
    assert_eq!(workloads[0], "trace:tests/fixtures/ingest_v1.champsim");
    assert!(root.join("tests/fixtures/ingest_v1.champsim").exists());
}

/// Pins the v2 JSON report schema byte-for-byte, the way
/// `tests/golden_trace.rs` pins the CCTR format: the report below is
/// assembled from hand-written counters (no simulation), so this fixture
/// only changes when the *schema* changes. If it does, bump
/// `REPORT_SCHEMA_VERSION` and regenerate with
/// `CCSIM_BLESS=1 cargo test --test campaign`.
#[test]
fn golden_report_schema_fixture() {
    let spec = CampaignSpec::from_json_str(
        r#"{
            "name": "golden",
            "seed": 7,
            "scale": "quick",
            "base_config": "tiny",
            "llc_scales": [1],
            "workloads": ["bfs.kron", "spec.stream"],
            "policies": ["lru", "srrip"]
        }"#,
    )
    .unwrap();

    let mk = |workload: &str, policy: &str, cycles: u64, llc_misses: u64| RawCell {
        config: "llc_x1".to_owned(),
        llc_scale: 1,
        result: SimResult {
            workload: workload.to_owned(),
            policy: policy.to_owned(),
            instructions: 200_000,
            cycles,
            l1d: CacheStats {
                demand_accesses: 50_000,
                demand_hits: 40_000,
                demand_misses: 10_000,
                mshr_merges: 1_200,
                writeback_accesses: 0,
                writeback_hits: 0,
                fills: 10_000,
                evictions: 9_488,
                writebacks_out: 3_000,
                bypasses: 0,
                writeback_bypass_overrides: 0,
            },
            l2: CacheStats {
                demand_accesses: 10_000,
                demand_hits: 2_500,
                demand_misses: 7_500,
                mshr_merges: 800,
                writeback_accesses: 3_000,
                writeback_hits: 2_900,
                fills: 7_500,
                evictions: 7_100,
                writebacks_out: 1_000,
                bypasses: 0,
                writeback_bypass_overrides: 0,
            },
            llc: CacheStats {
                demand_accesses: 7_500,
                demand_hits: 7_500 - llc_misses,
                demand_misses: llc_misses,
                mshr_merges: 40,
                writeback_accesses: 1_000,
                writeback_hits: 950,
                fills: llc_misses,
                evictions: llc_misses.saturating_sub(352),
                writebacks_out: 500,
                bypasses: 12,
                writeback_bypass_overrides: 2,
            },
            dram: DramStats {
                reads: llc_misses,
                writes: 500,
                row_hits: llc_misses / 2,
                row_empty: llc_misses / 4,
                row_conflicts: llc_misses / 4,
                queue_cycles: 31_415,
            },
            llc_diag: format!("{policy}: diag"),
        },
    };

    let report = CampaignReport::build(
        &spec,
        vec![
            mk("bfs.kron", "lru", 400_000, 6_000),
            mk("bfs.kron", "srrip", 380_000, 5_400),
            mk("spec.stream", "lru", 300_000, 7_000),
            mk("spec.stream", "srrip", 290_000, 6_200),
        ],
    );
    let rendered = report.to_json_string();

    let fixture_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/campaign_report_v2.json");
    if std::env::var_os("CCSIM_BLESS").is_some() {
        std::fs::write(&fixture_path, &rendered).unwrap();
    }
    let fixture = std::fs::read_to_string(&fixture_path)
        .expect("fixture missing; run with CCSIM_BLESS=1 to create it");
    assert_eq!(
        rendered, fixture,
        "the v2 report schema changed; bump REPORT_SCHEMA_VERSION and \
         add a new fixture rather than editing this one"
    );

    // The fixture is also valid JSON that round-trips through the parser.
    let parsed = ccsim::campaign::Json::parse(&fixture).unwrap();
    assert_eq!(parsed.get("schema_version").and_then(ccsim::campaign::Json::as_u64), Some(2));
    assert_eq!(parsed.get("cells").unwrap().as_array().unwrap().len(), 4);
}

/// `report-diff` must keep reading v1 reports (written before the
/// `writeback_bypass_overrides` counter existed): the retired v1 fixture
/// diffs cleanly against its v2 successor — same grid, zero deltas.
#[test]
fn report_diff_accepts_v1_reports() {
    let read = |name: &str| {
        std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join(name)).unwrap()
    };
    let v1 = read("tests/fixtures/campaign_report_v1.json");
    let v2 = read("tests/fixtures/campaign_report_v2.json");
    let diff = ccsim::campaign::ReportDiff::from_json_strs(&v1, &v2).unwrap();
    assert!(diff.same_grid());
    assert_eq!(diff.cells.len(), 4);
    assert_eq!(diff.max_abs_mpki_delta(), 0.0);
}

#[test]
fn report_cells_follow_spec_order_and_carry_speedups() {
    let outcome = Campaign::new(spec()).threads(4).run().unwrap();
    let cells = &outcome.report.cells;
    assert_eq!(cells.len(), 8);
    // Workload-major, config-middle, policy-minor — the spec grid order.
    assert_eq!(cells[0].workload, "xsbench.small");
    assert_eq!((cells[0].config.as_str(), cells[0].policy.as_str()), ("llc_x1", "lru"));
    assert_eq!((cells[1].config.as_str(), cells[1].policy.as_str()), ("llc_x1", "srrip"));
    assert_eq!((cells[2].config.as_str(), cells[2].policy.as_str()), ("llc_x2", "lru"));
    assert_eq!(cells[4].workload, "spec.stack");
    for c in cells {
        if c.policy == "lru" {
            assert_eq!(c.speedup_vs_lru, None);
        } else {
            assert!(c.speedup_vs_lru.is_some(), "{}|{}|{}", c.workload, c.config, c.policy);
        }
    }
    // The grid is real: a doubled LLC must not lower any hit rate.
    for (small, big) in cells.iter().zip(&cells[2..]).filter(|(a, _)| a.config == "llc_x1") {
        assert!(
            big.result.llc.demand_hits >= small.result.llc.demand_hits,
            "{}: bigger LLC lost hits",
            small.workload
        );
    }
}
