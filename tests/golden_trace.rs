//! Golden-fixture test pinning the on-disk `CCTR` trace format.
//!
//! `tests/fixtures/golden_v1.cctr` is a checked-in byte-exact encoding of
//! the trace constructed below. If either direction of this test fails,
//! the binary format has changed: bump the format version in
//! `crates/trace/src/io.rs` and add a *new* fixture instead of editing
//! this one, so old trace files stay readable.

use ccsim::trace::{read_trace, write_trace, AccessKind, Trace, TraceRecord};

const FIXTURE: &[u8] = include_bytes!("fixtures/golden_v1.cctr");

/// The trace the fixture encodes, spelled out record by record.
fn golden_trace() -> Trace {
    let records = vec![
        TraceRecord {
            pc: 0x400100,
            vaddr: 0x1000_0000,
            size: 8,
            kind: AccessKind::Load,
            nonmem_before: 3,
        },
        TraceRecord {
            pc: 0x400108,
            vaddr: 0x1000_0040,
            size: 4,
            kind: AccessKind::Store,
            nonmem_before: 0,
        },
        TraceRecord {
            pc: 0x40010C,
            vaddr: 0xDEAD_BEEF,
            size: 1,
            kind: AccessKind::Load,
            nonmem_before: u16::MAX,
        },
        TraceRecord {
            pc: 0xFFFF_FFFF_FFFF,
            vaddr: 0xFFF_FFFF_FFFF,
            size: 2,
            kind: AccessKind::Store,
            nonmem_before: 1,
        },
        TraceRecord { pc: 0, vaddr: 0, size: 64, kind: AccessKind::Load, nonmem_before: 0 },
    ];
    Trace::from_parts("golden", records, 7)
}

#[test]
fn fixture_decodes_to_known_trace() {
    let decoded = read_trace(FIXTURE).expect("golden fixture must stay readable");
    assert_eq!(decoded, golden_trace());
    assert_eq!(decoded.name(), "golden");
    assert_eq!(decoded.trailing_nonmem(), 7);
}

#[test]
fn encoding_is_byte_stable() {
    let mut bytes = Vec::new();
    write_trace(&golden_trace(), &mut bytes).unwrap();
    assert_eq!(
        bytes, FIXTURE,
        "write_trace no longer produces the v1 byte stream; bump the \
         format version and add a new fixture rather than changing this one"
    );
}

#[test]
fn fixture_header_is_v1() {
    assert_eq!(&FIXTURE[0..4], b"CCTR");
    assert_eq!(u32::from_le_bytes(FIXTURE[4..8].try_into().unwrap()), 1);
    // 4 magic + 4 version + 4 namelen + 6 name + 8 trailing + 8 count
    // + 5 records x 20 bytes.
    assert_eq!(FIXTURE.len(), 34 + 5 * 20);
}

#[test]
fn roundtrip_through_disk_bytes() {
    let decoded = read_trace(FIXTURE).unwrap();
    let mut reencoded = Vec::new();
    write_trace(&decoded, &mut reencoded).unwrap();
    let redecoded = read_trace(&reencoded[..]).unwrap();
    assert_eq!(redecoded, decoded);
}
