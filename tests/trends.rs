//! Trends integration tests: the pinned `ccsim_trends` ledger-line,
//! table and check-verdict formats, rolling-median gate behavior over
//! a realistic multi-source history, torn-tail recovery with
//! byte-preserving gc, and cross-schema ingest (a v1 obs manifest
//! without the pre-computed quantile block, and a freshly produced v2
//! manifest from a real campaign run).
//!
//! Unlike the obs goldens, every trends artifact is a pure function of
//! its inputs — no clocks, no timing — so all three fixtures are
//! pinned **byte-identically**. Regenerate with
//! `CCSIM_BLESS=1 cargo test --test trends` after an intentional
//! format change (and bump the relevant schema constant).

use std::path::PathBuf;

use ccsim::campaign::{Campaign, CampaignSpec, Json};
use ccsim::obs::QuantileSummary;
use ccsim::trends::{
    render_table, run_check, BenchCellSummary, BenchSummary, CheckOptions, DiffSummary, Ledger,
    ManifestSummary, TrendEntry, WatchSummary,
};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccsim_trends_itest_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn compare_or_bless(fixture: &str, actual: &str, what: &str) {
    let path = fixture_path(fixture);
    if std::env::var_os("CCSIM_BLESS").is_some() {
        std::fs::write(&path, actual).unwrap();
    }
    let pinned = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("{fixture} missing; run with CCSIM_BLESS=1 to create it"));
    assert_eq!(
        actual, pinned,
        "{what} diverged from {fixture}; if intentional, bump the schema constant and rebless"
    );
}

/// One fully populated synthetic revision: bench (two patterns x two
/// policies), a clean golden diff, two worker manifests and the watch
/// aggregate over them. `step` drifts throughput mildly upward and
/// overhead mildly upward, both inside the default gate budgets.
fn revision(step: u64) -> TrendEntry {
    let rps = 1_200_000.0 + step as f64 * 10_000.0;
    let mut e = TrendEntry::new(
        &format!("feedc0de{step:08}"),
        "main",
        &format!("{}", 1_754_600_000 + step * 3600),
    );
    let cell = |pattern: &str, policy: &str, median: f64| BenchCellSummary {
        pattern: pattern.to_owned(),
        policy: policy.to_owned(),
        records: 400_000,
        best_rps: median * 1.05,
        median_rps: median,
    };
    e.bench = Some(BenchSummary {
        quick: true,
        overhead_pct: 1.0 + step as f64 * 0.05,
        decode_ns: 2_000_000_000,
        simulate_ns: 16_000_000_000,
        report_ns: 2_000_000_000,
        cells: vec![
            cell("llc_thrash", "lru", rps),
            cell("llc_thrash", "srrip", rps * 0.98),
            cell("l1_hot", "lru", rps * 3.0),
            cell("l1_hot", "srrip", rps * 3.1),
        ],
    });
    e.diff = Some(DiffSummary {
        campaign_a: "golden".into(),
        campaign_b: "golden".into(),
        same_grid: true,
        threshold: 0.0,
        max_abs_mpki_delta: 0.0,
        cells_over_threshold: 0,
        cells: 6,
    });
    let worker_q = QuantileSummary {
        count: 2,
        min: 4_294_967_296,
        max: 8_589_934_591,
        p50: 8_589_934_591,
        p90: 8_589_934_591,
        p99: 8_589_934_591,
    };
    for worker in ["w1", "w2"] {
        e.manifests.push(ManifestSummary {
            worker: worker.to_owned(),
            cells_done: 2,
            records_simulated: 40_000_000,
            sim_wall_ns: 16_000_000_000,
            cell_sim: Some(worker_q),
        });
    }
    e.watch = Some(WatchSummary {
        campaign: "obs_itest".into(),
        done: true,
        records_simulated: 80_000_000,
        sim_wall_ns: 32_000_000_000,
        mean_cell_sim_ns: 8_000_000_000,
        cell_sim: Some(QuantileSummary { count: 4, ..worker_q }),
    });
    e
}

fn history() -> Vec<TrendEntry> {
    (0..5).map(revision).collect()
}

#[test]
fn golden_ledger_pins_the_line_format_and_round_trips() {
    let dir = temp_dir("ledger");
    let path = dir.join("trends.jsonl");
    for e in history() {
        Ledger::append(&path, &e).unwrap();
    }
    let text = std::fs::read_to_string(&path).unwrap();
    compare_or_bless("trends_ledger_v1.jsonl", &text, "the ledger line format");

    // Loading the pinned fixture reconstructs the exact in-memory
    // entries: nothing is lost or reinterpreted across the line format.
    let ledger = Ledger::load(&fixture_path("trends_ledger_v1.jsonl")).unwrap();
    assert!(!ledger.torn_tail());
    assert_eq!(ledger.entries, history());
    assert_eq!(ledger.entries[0].short_rev(), "feedc0de00");
    assert_eq!(ledger.entries[4].fleet_records_per_sec(), Some(2_500_000));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn golden_table_is_byte_deterministic() {
    let entries = history();
    let table = render_table(&entries);
    assert_eq!(render_table(&entries), table, "same slice, same bytes");
    compare_or_bless("trends_table_v1.txt", &table, "the trend table");
    // Every gated series plus the wall-split rows render a column per
    // revision and a sparkline.
    for row in [
        "bench/llc_thrash/median_rps",
        "bench/l1_hot/median_rps",
        "bench/obs_overhead_pct",
        "fleet/records_per_sec",
        "fleet/cell_sim_p99_ns",
        "diff/max_abs_mpki_delta",
        "bench/wall/simulate_pct",
    ] {
        assert!(table.contains(row), "missing {row} in:\n{table}");
    }
    assert!(table.contains("feedc0de00 (main)"), "{table}");
}

#[test]
fn golden_check_verdict_pins_the_schema_and_passes_on_mild_drift() {
    let verdict = run_check(&history(), &CheckOptions::default()).unwrap();
    assert!(verdict.pass(), "mild upward drift is inside every budget");
    let json = verdict.to_json().to_pretty();
    compare_or_bless("trends_check_v1.json", &json, "the check verdict document");
    let doc = Json::parse(&json).unwrap();
    assert_eq!(doc.get("ccsim_trends_check").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("pass"));
    assert_eq!(doc.get("rev").and_then(Json::as_str), Some("feedc0de00000004"));
    let series = doc.get("series").unwrap().as_array().unwrap();
    assert_eq!(series.len(), 6, "4 bench-suite/overhead + 2 fleet + 1 diff minus none");
    for s in series {
        assert_eq!(s.get("status").and_then(Json::as_str), Some("pass"), "{json}");
    }
}

#[test]
fn gate_fails_on_throughput_collapse_and_latency_spike() {
    // A 20% throughput drop on one bench suite: that series (and only
    // the bench series it hits) fails.
    let mut entries = history();
    let mut bad = revision(5);
    for c in &mut bad.bench.as_mut().unwrap().cells {
        if c.pattern == "llc_thrash" {
            c.median_rps *= 0.8;
        }
    }
    entries.push(bad);
    let verdict = run_check(&entries, &CheckOptions::default()).unwrap();
    assert!(!verdict.pass());
    let failed: Vec<&str> =
        verdict.series.iter().filter(|s| s.status == "fail").map(|s| s.name.as_str()).collect();
    assert_eq!(failed, ["bench/llc_thrash/median_rps"]);

    // A fleet per-cell p99 spike past the 25% rise budget fails the
    // latency series.
    let mut entries = history();
    let mut slow = revision(5);
    slow.watch.as_mut().unwrap().cell_sim.as_mut().unwrap().p99 = 17_179_869_183;
    entries.push(slow);
    let verdict = run_check(&entries, &CheckOptions::default()).unwrap();
    let p99 = verdict.series.iter().find(|s| s.name == "fleet/cell_sim_p99_ns").unwrap();
    assert_eq!(p99.status, "fail", "2x the median p99");

    // An entry recorded with no sources at all reports no_data
    // everywhere and does not fail the gate.
    let mut entries = history();
    entries.push(TrendEntry::new("feedc0de00000005", "main", "0"));
    let verdict = run_check(&entries, &CheckOptions::default()).unwrap();
    assert!(verdict.pass());
    assert!(verdict.series.iter().all(|s| s.status == "no_data"));

    // Two entries only: one prior value is below the default
    // min_history, so relative series bootstrap instead of failing.
    let verdict = run_check(&history()[..2], &CheckOptions::default()).unwrap();
    assert!(verdict.pass());
    let rps = verdict.series.iter().find(|s| s.name == "fleet/records_per_sec").unwrap();
    assert_eq!(rps.status, "insufficient_history");
}

#[test]
fn torn_tail_recovers_and_gc_preserves_surviving_bytes() {
    let dir = temp_dir("torn");
    let path = dir.join("trends.jsonl");
    let pinned = std::fs::read_to_string(fixture_path("trends_ledger_v1.jsonl")).unwrap();
    // A recorder died mid-append after the pinned history.
    std::fs::write(&path, format!("{pinned}{{\"ccsim_trends\":1,\"rev\":\"fe")).unwrap();

    let ledger = Ledger::load(&path).unwrap();
    assert!(ledger.torn_tail(), "partial final line is a torn append");
    assert_eq!(ledger.entries, history(), "intact prefix fully recovered");

    // gc drops the torn tail and keeps survivors byte-for-byte, so the
    // compacted file equals the pinned fixture again.
    let dropped = Ledger::gc(&path, 5).unwrap();
    assert_eq!(dropped, 1, "just the torn tail");
    assert_eq!(std::fs::read_to_string(&path).unwrap(), pinned);

    // Appending after recovery continues the line protocol cleanly.
    Ledger::append(&path, &revision(5)).unwrap();
    let ledger = Ledger::load(&path).unwrap();
    assert!(!ledger.torn_tail());
    assert_eq!(ledger.entries.len(), 6);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn v1_manifest_fixture_ingests_with_derived_quantiles() {
    // A pre-quantile (obs schema 1) worker manifest: the summary must
    // still carry cell-sim quantiles, derived from the raw log2
    // buckets.
    let text = std::fs::read_to_string(fixture_path("trends_manifest_v1.json")).unwrap();
    let doc = Json::parse(&text).unwrap();
    assert_eq!(doc.get("ccsim_obs").and_then(Json::as_u64), Some(1));
    assert!(text.find("\"quantiles\"").is_none(), "fixture must predate quantile blocks");

    let m = ManifestSummary::from_doc(&doc).unwrap();
    assert_eq!(m.worker, "w1");
    assert_eq!(m.records_per_sec(), 2_500_000);
    let q = m.cell_sim.expect("quantiles derived from buckets");
    assert_eq!(q.count, 2);
    assert_eq!(q.p50, 8_589_934_591, "bucket 33 upper bound");
    assert_eq!(q.p99, 17_179_869_183, "bucket 34 upper bound");
    assert_eq!(q.min, 4_294_967_296, "bucket 33 lower bound");

    // And it rides a ledger line unchanged.
    let mut e = TrendEntry::new("deadbeef00", "compat", "0");
    e.manifests.push(m);
    assert_eq!(TrendEntry::from_json_line(&e.to_json_line()).unwrap(), e);
    assert_eq!(e.fleet_cell_sim_p99_ns(), Some(17_179_869_183));
}

#[test]
fn freshly_produced_v2_manifest_ingests_end_to_end() {
    let dir = temp_dir("v2_ingest");
    let spec = CampaignSpec::from_json_str(
        r#"{
            "name": "trends_itest",
            "scale": "quick",
            "base_config": "tiny",
            "workloads": ["xsbench.small"],
            "policies": ["lru", "srrip"]
        }"#,
    )
    .unwrap();
    Campaign::new(spec).threads(2).obs_dir(&dir).run().unwrap();

    let text = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    let m = ManifestSummary::from_doc(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(m.worker, "(solo)");
    assert_eq!(m.cells_done, 2);
    assert!(m.records_simulated > 0 && m.sim_wall_ns > 0);
    let q = m.cell_sim.expect("v2 manifests always carry quantiles");
    assert!(q.count > 0 && q.p50 <= q.p99 && q.min <= q.max);

    // Record it and gate a single-entry ledger: relative series report
    // insufficient history, nothing fails.
    let path = dir.join("trends.jsonl");
    let mut e = TrendEntry::new("e2e0000001", "itest", "0");
    e.manifests.push(m);
    Ledger::append(&path, &e).unwrap();
    let ledger = Ledger::load(&path).unwrap();
    let verdict = run_check(&ledger.entries, &CheckOptions::default()).unwrap();
    assert!(verdict.pass());
    assert!(verdict.series.iter().all(|s| s.status == "insufficient_history"));
    assert!(render_table(ledger.last_n(10)).contains("fleet/records_per_sec"));
    std::fs::remove_dir_all(&dir).unwrap();
}
