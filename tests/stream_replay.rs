//! Streaming replay equivalence: `simulate_stream` over a `CCTR` byte
//! stream must be indistinguishable — every counter of every level — from
//! `simulate` over the materialized trace.

use std::io::BufReader;
use std::path::Path;

use ccsim::prelude::*;
use ccsim::trace::{write_trace, AccessKind, TraceReader, TraceRecord};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (0u64..1 << 40, 0u64..1 << 44, 1u8..=8, any::<bool>(), 0u16..2000).prop_map(
        |(pc, vaddr, size, store, nonmem)| TraceRecord {
            pc,
            vaddr,
            size,
            kind: if store { AccessKind::Store } else { AccessKind::Load },
            nonmem_before: nonmem,
        },
    )
}

fn arb_trace(max_len: usize) -> impl Strategy<Value = Trace> {
    (proptest::collection::vec(arb_record(), 0..max_len), 0u64..1000)
        .prop_map(|(records, trailing)| Trace::from_parts("prop", records, trailing))
}

/// Streams `trace` through `simulate_stream` via an in-memory CCTR
/// round-trip.
fn stream_replay(trace: &Trace, config: &SimConfig, policy: PolicyKind) -> SimResult {
    let mut bytes = Vec::new();
    write_trace(trace, &mut bytes).unwrap();
    simulate_stream(TraceReader::new(&bytes[..]).unwrap(), config, policy).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The streaming driver produces an identical `SimResult` — including
    /// every per-level counter and the policy diagnostic — for arbitrary
    /// traces, policies and LLC scales.
    #[test]
    fn simulate_stream_equals_simulate(
        trace in arb_trace(300),
        policy_idx in 0usize..PolicyKind::ALL.len(),
        llc_scale_log2 in 0u32..3,
    ) {
        let policy = PolicyKind::ALL[policy_idx];
        let config = SimConfig::tiny().with_llc_scale(1 << llc_scale_log2);
        let in_memory = simulate(&trace, &config, policy);
        let streamed = stream_replay(&trace, &config, policy);
        prop_assert_eq!(streamed, in_memory);
    }
}

/// Regression: streaming replay of the pinned ingest golden fixture (a
/// real converted ChampSim trace) matches in-memory replay bit for bit on
/// the full platform model, for the paper's policies.
#[test]
fn golden_ingest_fixture_streams_identically() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ingest_golden_v1.cctr");
    let bytes = std::fs::read(&path).unwrap();
    let trace = ccsim::trace::read_trace(&bytes[..]).unwrap();
    assert!(!trace.is_empty(), "golden fixture must carry records");
    let config = SimConfig::cascade_lake();
    for policy in [PolicyKind::Lru, PolicyKind::Ship, PolicyKind::Hawkeye, PolicyKind::Mpppb] {
        let in_memory = simulate(&trace, &config, policy);
        let streamed = simulate_stream(
            TraceReader::new(BufReader::new(std::fs::File::open(&path).unwrap())).unwrap(),
            &config,
            policy,
        )
        .unwrap();
        assert_eq!(streamed, in_memory, "{policy}");
    }
}

/// A multi-million-record on-disk trace streams to the same result as
/// its materialized twin — the scale regime campaigns rely on for
/// ingested traces (the stream side holds one record in memory at a
/// time; `TraceWriter` keeps the generation side bounded too).
#[test]
fn multi_million_record_trace_streams_identically() {
    use ccsim::trace::{TraceRecord, TraceWriter};

    let dir = std::env::temp_dir().join(format!("ccsim_stream_big_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("big.cctr");
    const RECORDS: u64 = 2_500_000;

    // Write straight to disk and build the in-memory twin in lockstep:
    // a zipfian-ish mix of a hot region and a cold sweep.
    let mut writer =
        TraceWriter::new(std::io::BufWriter::new(std::fs::File::create(&path).unwrap()), "big")
            .unwrap();
    let mut records = Vec::with_capacity(RECORDS as usize);
    for i in 0..RECORDS {
        let vaddr = if i % 3 == 0 { 0x100_0000 + (i % 512) * 64 } else { 0x800_0000 + i * 64 };
        let mut rec = if i % 7 == 0 {
            TraceRecord::store(0x400 + (i % 97) * 4, vaddr, 8)
        } else {
            TraceRecord::load(0x400 + (i % 97) * 4, vaddr, 8)
        };
        rec.nonmem_before = (i % 5) as u16;
        writer.write_record(&rec).unwrap();
        records.push(rec);
    }
    let inner = writer.finish(11).unwrap();
    drop(inner);
    let trace = Trace::from_parts("big", records, 11);

    let config = SimConfig::cascade_lake();
    let policy = PolicyKind::Ship;
    let streamed = simulate_stream(
        TraceReader::new(BufReader::new(std::fs::File::open(&path).unwrap())).unwrap(),
        &config,
        policy,
    )
    .unwrap();
    let in_memory = simulate(&trace, &config, policy);
    assert_eq!(streamed, in_memory);
    assert_eq!(streamed.instructions, trace.instructions());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Campaigns stream `trace:` cells by default; the streamed cell results
/// must equal a plain in-memory simulation of the same converted trace.
#[test]
fn campaign_streams_external_cells_identically() {
    use ccsim::ingest::champsim::{ChampSimRecord, ChampSimWriter};

    let dir = std::env::temp_dir().join(format!("ccsim_stream_campaign_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let source = dir.join("ext.champsim");
    let mut w = ChampSimWriter::new(std::fs::File::create(&source).unwrap());
    for i in 0..600u64 {
        w.write(&ChampSimRecord::nonmem(0x400 + 4 * i)).unwrap();
        w.write(&ChampSimRecord::load(0x600 + 4 * i, 0x10000 + 64 * (i % 48))).unwrap();
    }
    drop(w);

    let selector = format!("trace:{}", source.display());
    let spec = CampaignSpec::from_json_str(&format!(
        r#"{{"name": "stream", "base_config": "tiny",
             "workloads": ["{selector}"], "policies": ["lru", "srrip"]}}"#
    ))
    .unwrap();
    let cache = TraceCache::new(dir.join("cache")).unwrap();
    let outcome = Campaign::new(spec).threads(2).cache(cache).run().unwrap();

    // Reference: materialize the cached conversion and simulate in memory.
    let cache = TraceCache::new(dir.join("cache")).unwrap();
    let opts = IngestOptions { name: Some(selector.clone()), ..Default::default() };
    let reference_trace = cache.get_or_ingest(&source, &opts).unwrap();
    assert_eq!(cache.hits(), 1, "campaign must have converted the trace already");
    for cell in &outcome.report.cells {
        let policy: PolicyKind = cell.policy.parse().unwrap();
        let reference = simulate(&reference_trace, &SimConfig::tiny(), policy);
        assert_eq!(cell.result, reference, "{}", cell.policy);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
