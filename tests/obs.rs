//! Observability integration tests: the pinned `ccsim_obs` schema
//! (version 2: manifest histograms carry precomputed quantile
//! summaries) for event logs and run manifests, exact concurrent
//! metric accounting, and the `campaign watch` determinism contract.
//!
//! The event-log and manifest goldens are **structural** (key order and
//! value kinds), since timings are machine-dependent; regenerate with
//! `CCSIM_BLESS=1 cargo test --test obs` after an intentional schema
//! change (and bump `ccsim_obs::OBS_SCHEMA_VERSION`). The watch
//! document, by contrast, is a pure function of the shared directory's
//! contents, so it is pinned **byte-identically** across re-polls.

use std::path::PathBuf;

use ccsim::campaign::{Campaign, CampaignSpec, Json};
use ccsim::dist::{run_worker, Watcher, WorkerOptions};

/// 2 workloads x 2 policies on the tiny platform: two bands, four
/// cells — enough for two workers to split meaningfully.
const SPEC: &str = r#"{
    "name": "obs_itest",
    "scale": "quick",
    "base_config": "tiny",
    "workloads": ["xsbench.small", "spec.stack"],
    "policies": ["lru", "srrip"]
}"#;

fn spec() -> CampaignSpec {
    CampaignSpec::from_json_str(SPEC).unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccsim_obs_itest_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// Structural signature of an obs JSON document: object keys in order
/// and scalar kinds. Arrays collapse to a single token — histogram
/// bucket lists vary with timing (and may be empty), so only their
/// presence is pinned.
fn shape(v: &Json) -> String {
    match v {
        Json::Null | Json::Num(_) => "num?".into(),
        Json::Bool(_) => "bool".into(),
        Json::Str(_) => "str".into(),
        Json::Arr(_) => "[..]".into(),
        Json::Obj(pairs) => {
            let fields: Vec<String> =
                pairs.iter().map(|(k, v)| format!("{k}:{}", shape(v))).collect();
            format!("{{{}}}", fields.join(","))
        }
    }
}

/// One line of the event-log signature: the event name (or `header`)
/// followed by its keys in order. Values are dropped — timings vary.
fn event_signature(line: &str) -> String {
    let doc = Json::parse(line).expect("event log lines must parse as JSON");
    let Json::Obj(pairs) = &doc else { panic!("event log lines must be objects: {line}") };
    let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
    let ev = doc.get("ev").and_then(Json::as_str).unwrap_or("header");
    format!("{ev}({})", keys.join(","))
}

fn compare_or_bless(fixture: &str, actual: &str, what: &str) {
    let path = fixture_path(fixture);
    if std::env::var_os("CCSIM_BLESS").is_some() {
        std::fs::write(&path, actual).unwrap();
    }
    let pinned = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("{fixture} missing; run with CCSIM_BLESS=1 to create it"));
    assert_eq!(
        actual, pinned,
        "{what} diverged from {fixture}; if intentional, bump OBS_SCHEMA_VERSION and rebless"
    );
}

#[test]
fn solo_run_emits_pinned_event_log_and_manifest_schemas() {
    let dir = temp_dir("golden");
    let outcome = Campaign::new(spec()).threads(2).obs_dir(&dir).run().unwrap();
    assert_eq!(outcome.report.cells.len(), 4);

    // Event log: header line + run_start + (band_start, band_done) per
    // band + run_end, every line parseable, schema-versioned header.
    let log = std::fs::read_to_string(dir.join("run.obs.jsonl")).unwrap();
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), 2 + 2 * 2 + 1, "header + run_start + 2 bands x 2 + run_end: {log}");
    assert!(lines[0].starts_with("{\"ccsim_obs\": 2, \"kind\": \"events\""), "{}", lines[0]);
    let signature: String = lines.iter().map(|l| format!("{}\n", event_signature(l))).collect();
    compare_or_bless("obs_events_v1.txt", &signature, "the event-log line schema");

    // Manifest: pinned document shape (keys in order, scalar kinds),
    // plus the run accounting the watch dashboard consumes.
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    assert!(manifest.starts_with("{\"ccsim_obs\": 2, \"kind\": \"manifest\""), "{manifest}");
    assert!(manifest.ends_with("}\n"));
    let doc = Json::parse(&manifest).unwrap();
    assert_eq!(doc.get("worker").and_then(Json::as_str), Some("(solo)"));
    assert_eq!(doc.get("cells_done").and_then(Json::as_u64), Some(4));
    assert_eq!(doc.get("bands_done").and_then(Json::as_u64), Some(2));
    assert!(doc.get("records_simulated").and_then(Json::as_u64).unwrap() > 0);
    assert!(doc.get("sim_wall_ns").and_then(Json::as_u64).unwrap() > 0);
    compare_or_bless(
        "obs_manifest_v2.json",
        &format!("{}\n", shape(&doc)),
        "the manifest document shape",
    );

    // v2 histograms carry a precomputed quantile summary consistent with
    // the raw buckets, so v1-era consumers can ignore it and v2 readers
    // never re-derive. The cell-sim histogram records one per-cell
    // estimate per band: 2 bands here.
    let cell_hist = doc.get("histograms").unwrap().get("campaign_cell_sim_ns").unwrap();
    assert_eq!(cell_hist.get("count").and_then(Json::as_u64), Some(2));
    let q = cell_hist.get("quantiles").expect("v2 manifests precompute quantiles");
    let (p50, p99) = (
        q.get("p50").and_then(Json::as_u64).unwrap(),
        q.get("p99").and_then(Json::as_u64).unwrap(),
    );
    assert!(p50 > 0 && p50 <= p99, "p50 {p50} / p99 {p99}");
    assert!(q.get("min").and_then(Json::as_u64).unwrap() <= p50);
    assert!(q.get("max").and_then(Json::as_u64).unwrap() >= p99);

    // A re-run into the same directory truncates and rewrites both
    // files with the same schema (fresh baseline, not accumulation).
    let again = Campaign::new(spec()).threads(2).obs_dir(&dir).run().unwrap();
    assert_eq!(again.report.cells.len(), 4);
    let doc2 = Json::parse(&std::fs::read_to_string(dir.join("manifest.json")).unwrap()).unwrap();
    assert_eq!(doc2.get("cells_done").and_then(Json::as_u64), Some(4));
    assert_eq!(shape(&doc2), shape(&doc));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_counter_and_histogram_increments_are_exact() {
    // ingest_* metrics are untouched by every other test in this binary
    // (no external traces anywhere), so exact deltas are assertable
    // even with tests running concurrently.
    ccsim::obs::set_enabled(true);
    let m = ccsim::obs::metrics();
    let count0 = m.ingest_records.get();
    let h_count0 = m.ingest_wall_ns.count();
    let h_sum0 = m.ingest_wall_ns.sum();
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for _ in 0..10_000 {
                    m.ingest_records.add(3);
                    m.ingest_wall_ns.record(7);
                }
            });
        }
    });
    assert_eq!(m.ingest_records.get() - count0, 8 * 10_000 * 3, "sharded counter lost updates");
    assert_eq!(m.ingest_wall_ns.count() - h_count0, 8 * 10_000, "histogram lost samples");
    assert_eq!(m.ingest_wall_ns.sum() - h_sum0, 8 * 10_000 * 7, "histogram sum drifted");
}

#[test]
fn watch_json_over_a_two_worker_dir_is_byte_identical_across_polls() {
    let dir = temp_dir("watch");
    let shared = dir.join("shared");
    let spec = spec();

    // Two *sequential* workers so the division of labor is fixed: w1
    // stops after one band (cell limit), w2 drains the rest.
    let mut w1 = WorkerOptions::new("w1");
    w1.max_cells = Some(2);
    w1.threads = 2;
    let first = run_worker(&spec, &shared, &w1).unwrap();
    assert!(!first.campaign_done);
    assert_eq!(first.completed, 2);
    let second = run_worker(&spec, &shared, &WorkerOptions::new("w2")).unwrap();
    assert!(second.campaign_done);
    assert_eq!(second.completed, 2);
    for f in ["obs.w1.jsonl", "manifest.w1.json", "obs.w2.jsonl", "manifest.w2.json"] {
        assert!(shared.join(f).exists(), "worker telemetry file {f} missing");
    }

    // The watch document is a pure function of the directory: polling
    // again through the same watcher (warm merge cursor) and through a
    // cold one must produce identical bytes.
    let mut watcher = Watcher::new();
    let view = watcher.poll(&spec, &shared).unwrap();
    let json = view.to_json();
    assert_eq!(watcher.poll(&spec, &shared).unwrap().to_json(), json, "warm re-poll diverged");
    assert_eq!(
        Watcher::new().poll(&spec, &shared).unwrap().to_json(),
        json,
        "cold re-poll diverged"
    );

    assert!(json.starts_with("{\"ccsim_obs\": 2, \"kind\": \"watch\""), "{json}");
    assert!(view.done());
    let doc = Json::parse(&json).unwrap();
    let cells = doc.get("cells").unwrap();
    assert_eq!(cells.get("total").and_then(Json::as_u64), Some(4));
    assert_eq!(cells.get("completed").and_then(Json::as_u64), Some(4));
    assert_eq!(cells.get("leased").and_then(Json::as_u64), Some(0));
    let workers = doc.get("workers").unwrap().as_array().unwrap();
    assert_eq!(workers.len(), 2);
    for w in workers {
        assert_eq!(w.get("manifest"), Some(&Json::Bool(true)));
        assert_eq!(w.get("completed").and_then(Json::as_u64), Some(2));
        assert_eq!(w.get("cells_done").and_then(Json::as_u64), Some(2));
        assert!(w.get("records_per_sec").and_then(Json::as_u64).unwrap() > 0);
    }
    let agg = doc.get("aggregate").unwrap();
    assert!(agg.get("records_simulated").and_then(Json::as_u64).unwrap() > 0);
    assert!(agg.get("records_per_sec").and_then(Json::as_u64).unwrap() > 0);
    assert!(agg.get("mean_cell_sim_ns").and_then(Json::as_u64).unwrap() > 0);
    // Fleet-wide cell-sim quantiles, summed over both workers' buckets:
    // one per-cell sample per band, one band per worker here, ordered
    // p50 <= p99, ingestible by `trends record --from-watch`.
    let cs = agg.get("cell_sim_ns").expect("watch aggregate carries cell_sim_ns quantiles");
    assert_eq!(cs.get("count").and_then(Json::as_u64), Some(2));
    let (p50, p99) = (
        cs.get("p50").and_then(Json::as_u64).unwrap(),
        cs.get("p99").and_then(Json::as_u64).unwrap(),
    );
    assert!(p50 > 0 && p50 <= p99, "p50 {p50} / p99 {p99}");
    assert_eq!(agg.get("eta_seconds").and_then(Json::as_u64), Some(0), "grid is drained");
    std::fs::remove_dir_all(&dir).unwrap();
}
