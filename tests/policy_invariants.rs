//! Cross-policy invariants checked on real simulated streams.

use ccsim::policies::belady::belady_replay;
use ccsim::prelude::*;
use ccsim::trace::synth::{AccessDistribution, PatternGen, RandomAccess, SequentialStream};

fn zipf_trace(records: u64) -> Trace {
    let mut buf = TraceBuffer::new("zipf");
    RandomAccess::new(0x1000_0000, 1 << 16, 64, records)
        .distribution(AccessDistribution::Zipf(0.8))
        .store_fraction(0.1)
        .seed(11)
        .emit(&mut buf);
    buf.finish()
}

/// Belady's OPT upper-bounds every online policy's LLC hit count on the
/// identical demand stream.
#[test]
fn opt_dominates_every_online_policy() {
    let trace = zipf_trace(60_000);
    let config = SimConfig::cascade_lake();
    let (_, log) = simulate_with_llc_log(&trace, &config, PolicyKind::Lru);
    let opt = belady_replay(&log, config.llc.sets, config.llc.ways);
    for kind in PolicyKind::ALL {
        let r = simulate(&trace, &config, kind);
        // The LLC demand stream is identical across policies (L1/L2 fixed).
        assert_eq!(r.llc.demand_accesses, opt.hits + opt.misses, "{kind}");
        assert!(
            r.llc.demand_hits <= opt.hits,
            "{kind}: online policy beat OPT ({} > {})",
            r.llc.demand_hits,
            opt.hits
        );
    }
}

/// On a cyclic working set slightly larger than the LLC, LRU gets ~zero
/// hits while BRRIP-style thrash protection retains a useful fraction —
/// the textbook RRIP result.
#[test]
fn brrip_beats_lru_on_cyclic_thrash() {
    let mut buf = TraceBuffer::new("thrash");
    SequentialStream::new(0x1000_0000, 2 << 20).stride(64).laps(8).emit(&mut buf);
    let trace = buf.finish();
    let config = SimConfig::cascade_lake();
    let lru = simulate(&trace, &config, PolicyKind::Lru);
    let brrip = simulate(&trace, &config, PolicyKind::Brrip);
    assert!(lru.llc.hit_rate() < 0.05, "lru must thrash: {}", lru.llc.hit_rate());
    assert!(
        brrip.llc.hit_rate() > lru.llc.hit_rate() + 0.1,
        "brrip {} vs lru {}",
        brrip.llc.hit_rate(),
        lru.llc.hit_rate()
    );
}

/// DRRIP's dueling should land within (or above) the envelope of its two
/// component policies, with a small slack for leader-set overhead.
#[test]
fn drrip_tracks_the_better_component() {
    let trace = zipf_trace(80_000);
    let config = SimConfig::cascade_lake();
    let srrip = simulate(&trace, &config, PolicyKind::Srrip);
    let brrip = simulate(&trace, &config, PolicyKind::Brrip);
    let drrip = simulate(&trace, &config, PolicyKind::Drrip);
    let best = srrip.llc.demand_hits.max(brrip.llc.demand_hits);
    let worst = srrip.llc.demand_hits.min(brrip.llc.demand_hits);
    assert!(
        drrip.llc.demand_hits + worst / 10 >= worst,
        "drrip {} far below both components ({} / {})",
        drrip.llc.demand_hits,
        srrip.llc.demand_hits,
        brrip.llc.demand_hits
    );
    assert!(
        drrip.llc.demand_hits <= best + best / 10 + 100,
        "drrip suspiciously above both components"
    );
}

/// Sanity floor: no policy collapses to a small fraction of random
/// replacement's hit count on a skewed stream. (Interestingly, plain LRU
/// can legitimately fall *slightly below* random at the LLC: the L1/L2
/// absorb the recency-friendly traffic, leaving the LLC a stream with a
/// weak recency signal — one of the filtered-traffic effects the
/// replacement-policy literature documents.)
#[test]
fn no_policy_collapses_below_random_floor() {
    let trace = zipf_trace(100_000);
    let config = SimConfig::cascade_lake();
    let random = simulate(&trace, &config, PolicyKind::Random);
    for kind in PolicyKind::ALL {
        let r = simulate(&trace, &config, kind);
        assert!(
            r.llc.demand_hits * 2 >= random.llc.demand_hits,
            "{kind}: {} vs random {}",
            r.llc.demand_hits,
            random.llc.demand_hits
        );
    }
}

/// Bit-PLRU approximates LRU: on a recency-friendly stream their hit
/// counts should be close.
#[test]
fn bitplru_approximates_lru() {
    let trace = zipf_trace(60_000);
    let config = SimConfig::cascade_lake();
    let lru = simulate(&trace, &config, PolicyKind::Lru);
    let plru = simulate(&trace, &config, PolicyKind::BitPlru);
    let ratio = plru.llc.demand_hits as f64 / lru.llc.demand_hits.max(1) as f64;
    assert!((0.8..=1.2).contains(&ratio), "plru/lru hit ratio {ratio}");
}
