//! Enforces the hot-path contract: steady-state simulation performs
//! **zero heap allocations per trace record**, for every built-in policy.
//!
//! The binary installs a counting global allocator and drives a warmed
//! `Hierarchy` + `Core` pair — the exact record loop `simulate` runs —
//! across a second full pass of an eviction-heavy trace, asserting the
//! allocation counter does not move at all. The same is then asserted
//! for boxed (`PolicyDispatch::Custom`) policies — the path where every
//! full-set fill reconstructs `LineView`s from the SoA tag store into a
//! stack buffer — and for the one-pass lockstep grid driver (`GridReplay`), including its
//! streamed chunk-decode loop, and a final check exercises the
//! production differencing probe (`ccsim bench`'s alloc check) end to
//! end. Telemetry is explicitly enabled for the measurement, and the
//! `ccsim-obs` primitives themselves (counter, gauge, histogram, span)
//! are hammered inside the measured region: the zero-alloc contract is
//! pinned *with instrumentation on*, not on a stripped build.
//!
//! Everything lives in one `#[test]`: the counter is process-global, so
//! concurrent tests in the same binary would pollute the measurement.

use ccsim::prelude::*;
use ccsim::trace::synth::{PatternGen, RandomAccess, SequentialStream};
use ccsim::trace::TraceBuffer;
use ccsim_bench::alloc_track::{allocations, counting_enabled, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Replays `trace` once on an existing hierarchy/core pair — the same
/// per-record loop as `ccsim_core::simulate`.
fn replay(hierarchy: &mut ccsim::core::Hierarchy, core: &mut ccsim::core::Core, trace: &Trace) {
    for rec in trace {
        if rec.nonmem_before > 0 {
            core.dispatch_nonmem(rec.nonmem_before as u64);
        }
        let is_store = rec.kind.is_store();
        let (pc, vaddr) = (rec.pc, rec.vaddr);
        core.dispatch_mem(|at| {
            let done = hierarchy.demand_access(pc, vaddr, is_store, at);
            if is_store {
                at + 1
            } else {
                done
            }
        });
    }
}

#[test]
fn steady_state_replay_allocates_nothing() {
    assert!(counting_enabled(), "the counting allocator must be installed in this binary");
    // Telemetry stays ON for the whole measurement: the zero-alloc
    // contract covers the instrumented hot path, not a stripped one.
    ccsim::obs::set_enabled(true);

    let config = SimConfig::cascade_lake();
    // Eviction-heavy: twice the LLC, so every level evicts on every fill;
    // 10% stores so writeback fills (and their victim queries) run too.
    let mut buf = TraceBuffer::new("thrash");
    SequentialStream::new(0x1000_0000, 2 * config.llc.capacity_bytes())
        .stride(64)
        .store_every(10)
        .laps(2)
        .emit(&mut buf);
    let thrash = buf.finish();
    // And a random mix, for set-index entropy and MSHR-merge variety.
    let mut buf = TraceBuffer::new("mix");
    RandomAccess::new(0x4000_0000, 2 * config.llc.capacity_bytes() / 64, 64, 60_000)
        .store_fraction(0.2)
        .seed(9)
        .emit(&mut buf);
    let mix = buf.finish();

    for kind in PolicyKind::ALL {
        let mut hierarchy = ccsim::core::Hierarchy::new(
            &config,
            kind.build_dispatch(config.llc.sets, config.llc.ways),
        );
        let mut core = ccsim::core::Core::new(config.core);
        // Warm pass: fills every set, saturates MSHR maps, policy
        // samplers and the ROB ring to their steady-state footprint.
        replay(&mut hierarchy, &mut core, &thrash);
        replay(&mut hierarchy, &mut core, &mix);

        let before = allocations();
        replay(&mut hierarchy, &mut core, &thrash);
        replay(&mut hierarchy, &mut core, &mix);
        let during = allocations() - before;
        assert_eq!(
            during,
            0,
            "{kind}: {during} heap allocations across {} steady-state records",
            thrash.len() + mix.len(),
        );
    }

    // The boxed-policy (`PolicyDispatch::Custom`) path is the one route
    // where victim queries still lend reconstructed `LineView`s: built-in
    // enum dispatch opts out via `inspects_lines()`, but a boxed policy
    // conservatively receives real views, rebuilt from the SoA tag words
    // and dirty bitmap into a fixed stack buffer on *every* full-set
    // fill. Hammer that lending path explicitly: it must be exactly as
    // allocation-free as the opted-out fast path.
    for kind in [PolicyKind::Lru, PolicyKind::Hawkeye, PolicyKind::Mpppb] {
        let boxed: ccsim::policies::PolicyDispatch =
            kind.build(config.llc.sets, config.llc.ways).into();
        assert!(boxed.inspects_lines(), "boxed policies must get reconstructed views");
        let mut hierarchy = ccsim::core::Hierarchy::new(&config, boxed);
        let mut core = ccsim::core::Core::new(config.core);
        replay(&mut hierarchy, &mut core, &thrash);
        replay(&mut hierarchy, &mut core, &mix);

        let before = allocations();
        replay(&mut hierarchy, &mut core, &thrash);
        replay(&mut hierarchy, &mut core, &mix);
        let during = allocations() - before;
        assert_eq!(
            during,
            0,
            "boxed {kind}: {during} heap allocations across {} steady-state records \
             on the view-lending path",
            thrash.len() + mix.len(),
        );
    }

    // The one-pass grid driver inherits the contract: advancing N warmed
    // lockstep engines through further records — including the streamed
    // chunk-decode loop, whose chunk buffer is reserved up front and
    // reused — must not allocate either.
    let mut bytes = Vec::new();
    ccsim::trace::write_trace(&thrash, &mut bytes).unwrap();
    let cells = [
        (config, PolicyKind::Lru),
        (config, PolicyKind::Ship),
        (config.with_llc_scale(2), PolicyKind::Hawkeye),
        (config.with_llc_scale(4), PolicyKind::Mpppb),
    ];
    let mut grid = GridReplay::new(&cells, 0);
    // Warm pass: every engine fills its sets and samplers, and the chunk
    // buffer reaches its full capacity.
    let mut reader = ccsim::trace::TraceReader::new(&bytes[..]).unwrap();
    grid.replay_reader(&mut reader).unwrap();
    grid.replay_trace(&mix);

    // Readers are constructed outside the measured region (the CCTR
    // header carries an owned workload name).
    let mut reader = ccsim::trace::TraceReader::new(&bytes[..]).unwrap();
    let before = allocations();
    // replay_reader and replay_trace bump the grid chunk/record counters
    // internally; hammer every telemetry primitive directly as well —
    // sharded counter, gauge, histogram and span timer must all stay
    // allocation-free with telemetry enabled.
    let metrics = ccsim::obs::metrics();
    for _ in 0..10_000 {
        metrics.sim_records.add(3);
        metrics.cache_hits.inc();
        metrics.dist_held_leases.inc();
        metrics.dist_held_leases.dec();
        metrics.sim_wall_ns.record(1_234);
        metrics.cache_ensure_ns.span().stop();
    }
    grid.replay_reader(&mut reader).unwrap();
    grid.replay_trace(&mix);
    let during = allocations() - before;
    assert_eq!(
        during,
        0,
        "grid driver: {during} heap allocations across {} steady-state records x {} cells",
        thrash.len() + mix.len(),
        cells.len(),
    );
    let results = grid.finish(thrash.name(), thrash.trailing_nonmem());
    assert_eq!(results.len(), cells.len());
    assert!(results.iter().all(|r| r.instructions > 0));

    // The production probe (what `ccsim bench` reports and CI greps on)
    // must agree now that a counting allocator is present.
    assert_eq!(
        ccsim_bench::throughput::steady_state_alloc_check(),
        ccsim_bench::throughput::AllocCheck::Pass,
    );
}
