//! Property-based tests over the whole stack.

use ccsim::ingest::champsim::{ChampSimRecord, ChampSimWriter};
use ccsim::ingest::{ingest, ingest_to_trace, IngestOptions};
use ccsim::policies::belady::belady_replay;
use ccsim::prelude::*;
use ccsim::trace::{read_trace, write_trace, AccessKind, TraceBuffer, TraceRecord};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (0u64..1 << 40, 0u64..1 << 44, 1u8..=8, any::<bool>(), 0u16..=u16::MAX).prop_map(
        |(pc, vaddr, size, store, nonmem)| TraceRecord {
            pc,
            vaddr,
            size,
            kind: if store { AccessKind::Store } else { AccessKind::Load },
            nonmem_before: nonmem,
        },
    )
}

fn arb_trace(max_len: usize) -> impl Strategy<Value = Trace> {
    (proptest::collection::vec(arb_record(), 0..max_len), 0u64..1000)
        .prop_map(|(records, trailing)| Trace::from_parts("prop", records, trailing))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binary serialization round-trips arbitrary traces exactly.
    #[test]
    fn trace_serialization_roundtrip(trace in arb_trace(200)) {
        let mut bytes = Vec::new();
        write_trace(&trace, &mut bytes).unwrap();
        let back = read_trace(&bytes[..]).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// The `nonmem_before` splitting invariant (`TraceBuffer` docs):
    /// arbitrary non-memory gaps — including ones far beyond `u16::MAX`
    /// — survive construction and a `CCTR` round-trip with the exact
    /// instruction total intact, each record's field saturating at
    /// `u16::MAX` and the residue landing in `trailing_nonmem`.
    #[test]
    fn nonmem_gaps_beyond_u16_split_losslessly(
        gaps in proptest::collection::vec(0u64..200_000, 1..40),
        trailing in 0u64..200_000,
    ) {
        let mut buf = TraceBuffer::new("gaps");
        for (i, &gap) in gaps.iter().enumerate() {
            buf.nonmem(gap);
            buf.load(0x400, 64 * i as u64, 8);
        }
        buf.nonmem(trailing);
        let trace = buf.finish();
        let expected = gaps.iter().sum::<u64>() + trailing + gaps.len() as u64;
        prop_assert_eq!(trace.instructions(), expected);
        // The split is canonical: greedy front-loading, so a record only
        // carries less than u16::MAX when the backlog is drained.
        let mut backlog = 0u64;
        for (r, &gap) in trace.records().iter().zip(&gaps) {
            backlog += gap;
            let take = backlog.min(u16::MAX as u64);
            prop_assert_eq!(r.nonmem_before as u64, take);
            backlog -= take;
        }
        prop_assert_eq!(trace.trailing_nonmem(), backlog + trailing);

        let mut bytes = Vec::new();
        write_trace(&trace, &mut bytes).unwrap();
        let back = read_trace(&bytes[..]).unwrap();
        prop_assert_eq!(back.instructions(), expected);
        prop_assert_eq!(back, trace);
    }

    /// Ingesting arbitrary ChampSim instruction streams: the streaming
    /// and in-memory pipelines emit identical bytes, and the exact
    /// accounting identity `output = source + residual_debt` holds.
    #[test]
    fn champsim_ingest_streaming_equals_in_memory(
        instrs in proptest::collection::vec(
            (0u64..1 << 40, 0u8..4, 0u8..3, any::<bool>()), 0..120),
    ) {
        let mut source = Vec::new();
        let mut w = ChampSimWriter::new(&mut source);
        let mut source_instructions = 0u64;
        for &(pc, loads, stores, branch) in &instrs {
            let mut rec = if branch {
                ChampSimRecord::branch(pc, pc % 2 == 0)
            } else {
                ChampSimRecord::nonmem(pc)
            };
            for l in 0..loads {
                rec.source_memory[l as usize] = 0x1000 + 64 * (pc % 97) + l as u64;
            }
            for s in 0..stores {
                rec.destination_memory[s as usize] = 0x8000_0000 + 64 * (pc % 31) + s as u64;
            }
            w.write(&rec).unwrap();
            source_instructions += 1;
        }
        // Explicit format: an empty stream has nothing to auto-detect.
        let opts = IngestOptions {
            format: Some(SourceFormat::ChampSim),
            name: Some("prop".into()),
            ..Default::default()
        };
        let (trace, report) = ingest_to_trace(&source[..], &opts).unwrap();
        let mut via_mem = Vec::new();
        write_trace(&trace, &mut via_mem).unwrap();
        let mut cursor = std::io::Cursor::new(Vec::new());
        let stream_report = ingest(&source[..], &mut cursor, &opts).unwrap();
        prop_assert_eq!(cursor.into_inner(), via_mem);
        prop_assert_eq!(&report, &stream_report);
        prop_assert_eq!(report.source_instructions, source_instructions);
        prop_assert_eq!(
            trace.instructions(),
            report.source_instructions + report.residual_debt
        );
    }

    /// The reuse profile conserves mass on arbitrary traces.
    #[test]
    fn reuse_profile_mass_conserved(trace in arb_trace(300)) {
        let p = ccsim::trace::stats::ReuseProfile::compute(&trace);
        prop_assert_eq!(p.mass(), trace.len() as u64);
        // The hit fraction is monotone in capacity.
        let mut prev = 0.0;
        for k in 0..20 {
            let f = p.hit_fraction_within(1 << k);
            prop_assert!(f + 1e-12 >= prev);
            prev = f;
        }
    }

    /// Simulator conservation laws hold for arbitrary access streams under
    /// every policy: hits + misses = accesses at each level, and miss
    /// traffic cascades exactly.
    #[test]
    fn simulator_conservation_laws(
        trace in arb_trace(400),
        policy_idx in 0usize..PolicyKind::ALL.len(),
    ) {
        let policy = PolicyKind::ALL[policy_idx];
        let r = simulate(&trace, &SimConfig::tiny(), policy);
        prop_assert_eq!(r.instructions, trace.instructions());
        for stats in [&r.l1d, &r.l2, &r.llc] {
            prop_assert_eq!(
                stats.demand_hits + stats.demand_misses,
                stats.demand_accesses
            );
        }
        prop_assert_eq!(r.l2.demand_accesses, r.l1d.demand_misses);
        prop_assert_eq!(r.llc.demand_accesses, r.l2.demand_misses);
        prop_assert_eq!(
            r.dram.reads + r.llc.mshr_merges,
            r.llc.demand_misses
        );
    }

    /// Belady replay: hits + misses = stream length, and OPT with more
    /// ways never hits less.
    #[test]
    fn belady_monotone_in_ways(
        blocks in proptest::collection::vec(0u64..64, 1..200),
        ways in 1u32..8,
    ) {
        let stream: Vec<(u32, u64)> = blocks.iter().map(|&b| (0u32, b)).collect();
        let small = belady_replay(&stream, 1, ways);
        let large = belady_replay(&stream, 1, ways + 1);
        prop_assert_eq!(small.hits + small.misses, stream.len() as u64);
        prop_assert!(large.hits >= small.hits);
    }

    /// CSR construction produces a verified graph for arbitrary edge lists,
    /// and transposing twice is the identity.
    #[test]
    fn csr_wellformed_for_random_edges(
        n in 2u32..64,
        edges in proptest::collection::vec((0u32..64, 0u32..64), 0..200),
    ) {
        let clamped: Vec<(u32, u32)> =
            edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let g = Graph::from_edges(n, &clamped, true);
        prop_assert!(g.verify().is_ok());
        let t = g.transpose();
        prop_assert!(t.verify().is_ok());
        prop_assert_eq!(t.transpose(), g);
    }

    /// Delta-stepping equals Dijkstra on random weighted graphs.
    #[test]
    fn sssp_matches_dijkstra(
        seed in 0u64..1000,
        delta in 1u32..64,
    ) {
        let g = ccsim::graph::generators::uniform(7, 4, seed)
            .with_random_weights(32, seed);
        let ds = ccsim::graph::kernels::sssp(&g, 0, delta);
        let dj = ccsim::graph::kernels::dijkstra(&g, 0);
        prop_assert_eq!(ds, dj);
    }
}
