//! Property-based tests over the whole stack.

use ccsim::policies::belady::belady_replay;
use ccsim::prelude::*;
use ccsim::trace::{read_trace, write_trace, AccessKind, TraceRecord};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (0u64..1 << 40, 0u64..1 << 44, 1u8..=8, any::<bool>(), 0u16..=u16::MAX).prop_map(
        |(pc, vaddr, size, store, nonmem)| TraceRecord {
            pc,
            vaddr,
            size,
            kind: if store { AccessKind::Store } else { AccessKind::Load },
            nonmem_before: nonmem,
        },
    )
}

fn arb_trace(max_len: usize) -> impl Strategy<Value = Trace> {
    (proptest::collection::vec(arb_record(), 0..max_len), 0u64..1000)
        .prop_map(|(records, trailing)| Trace::from_parts("prop", records, trailing))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binary serialization round-trips arbitrary traces exactly.
    #[test]
    fn trace_serialization_roundtrip(trace in arb_trace(200)) {
        let mut bytes = Vec::new();
        write_trace(&trace, &mut bytes).unwrap();
        let back = read_trace(&bytes[..]).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// The reuse profile conserves mass on arbitrary traces.
    #[test]
    fn reuse_profile_mass_conserved(trace in arb_trace(300)) {
        let p = ccsim::trace::stats::ReuseProfile::compute(&trace);
        prop_assert_eq!(p.mass(), trace.len() as u64);
        // The hit fraction is monotone in capacity.
        let mut prev = 0.0;
        for k in 0..20 {
            let f = p.hit_fraction_within(1 << k);
            prop_assert!(f + 1e-12 >= prev);
            prev = f;
        }
    }

    /// Simulator conservation laws hold for arbitrary access streams under
    /// every policy: hits + misses = accesses at each level, and miss
    /// traffic cascades exactly.
    #[test]
    fn simulator_conservation_laws(
        trace in arb_trace(400),
        policy_idx in 0usize..PolicyKind::ALL.len(),
    ) {
        let policy = PolicyKind::ALL[policy_idx];
        let r = simulate(&trace, &SimConfig::tiny(), policy);
        prop_assert_eq!(r.instructions, trace.instructions());
        for stats in [&r.l1d, &r.l2, &r.llc] {
            prop_assert_eq!(
                stats.demand_hits + stats.demand_misses,
                stats.demand_accesses
            );
        }
        prop_assert_eq!(r.l2.demand_accesses, r.l1d.demand_misses);
        prop_assert_eq!(r.llc.demand_accesses, r.l2.demand_misses);
        prop_assert_eq!(
            r.dram.reads + r.llc.mshr_merges,
            r.llc.demand_misses
        );
    }

    /// Belady replay: hits + misses = stream length, and OPT with more
    /// ways never hits less.
    #[test]
    fn belady_monotone_in_ways(
        blocks in proptest::collection::vec(0u64..64, 1..200),
        ways in 1u32..8,
    ) {
        let stream: Vec<(u32, u64)> = blocks.iter().map(|&b| (0u32, b)).collect();
        let small = belady_replay(&stream, 1, ways);
        let large = belady_replay(&stream, 1, ways + 1);
        prop_assert_eq!(small.hits + small.misses, stream.len() as u64);
        prop_assert!(large.hits >= small.hits);
    }

    /// CSR construction produces a verified graph for arbitrary edge lists,
    /// and transposing twice is the identity.
    #[test]
    fn csr_wellformed_for_random_edges(
        n in 2u32..64,
        edges in proptest::collection::vec((0u32..64, 0u32..64), 0..200),
    ) {
        let clamped: Vec<(u32, u32)> =
            edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let g = Graph::from_edges(n, &clamped, true);
        prop_assert!(g.verify().is_ok());
        let t = g.transpose();
        prop_assert!(t.verify().is_ok());
        prop_assert_eq!(t.transpose(), g);
    }

    /// Delta-stepping equals Dijkstra on random weighted graphs.
    #[test]
    fn sssp_matches_dijkstra(
        seed in 0u64..1000,
        delta in 1u32..64,
    ) {
        let g = ccsim::graph::generators::uniform(7, 4, seed)
            .with_random_weights(32, seed);
        let ds = ccsim::graph::kernels::sssp(&g, 0, delta);
        let dj = ccsim::graph::kernels::dijkstra(&g, 0);
        prop_assert_eq!(ds, dj);
    }
}
