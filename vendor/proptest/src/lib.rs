//! Offline, API-compatible stand-in for the `proptest` crate.
//!
//! Implements the surface the ccsim workspace uses: [`Strategy`] with
//! `prop_map`, range and tuple strategies, [`collection::vec`],
//! [`arbitrary::any`], [`ProptestConfig`] and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Semantics: each `proptest!` test runs `ProptestConfig::cases`
//! deterministic pseudo-random cases. There is no shrinking — a failing
//! case panics with the case index so it can be replayed (cases are
//! deterministic per test).

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic test-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    rng.next_u64() as $t
                } else {
                    lo + ((rng.next_u64() as u128 % span) as $t)
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn
    /// from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec<S::Value>` with lengths in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone)]
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub use arbitrary::any;

/// Marker so `AnyStrategy` can be named without the module path.
pub type AnyStrategyOf<T> = arbitrary::AnyStrategy<T>;

#[doc(hidden)]
pub fn __seed_for(test_name: &str) -> u64 {
    // FNV-1a over the test path: deterministic, distinct per test.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[doc(hidden)]
pub struct __Phantom<T>(PhantomData<T>);

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the subset of the real macro the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_test(x in 0u64..100, v in proptest::collection::vec(0u32..9, 0..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::seed_from_u64(
                $crate::__seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            $(let $arg = $strat;)*
            for case in 0..config.cases {
                let result = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $(let $arg = $crate::Strategy::new_value(&$arg, &mut rng);)*
                    $body
                    Ok(())
                })();
                if let Err(msg) = result {
                    panic!("proptest case {case}/{} failed: {msg}", config.cases);
                }
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body; reports the failing
/// case on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

pub mod prelude {
    //! Glob-import surface matching the real crate's prelude.

    pub use crate::arbitrary::any;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 5u64..10, y in 0u8..=3, b in any::<bool>()) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y <= 3);
            let coin = u8::from(b);
            prop_assert!(coin <= 1);
        }

        #[test]
        fn tuples_and_vec(
            pair in (0u32..4, 10u32..14),
            v in crate::collection::vec(0u64..100, 1..20),
        ) {
            prop_assert!(pair.0 < 4 && (10..14).contains(&pair.1));
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn prop_map_applies(s in (0u64..50).prop_map(|x| x * 2)) {
            prop_assert!(s % 2 == 0 && s < 100);
            prop_assert_eq!(s / 2 * 2, s);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_panics_with_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
