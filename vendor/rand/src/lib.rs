//! Offline, API-compatible stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! exactly the surface the ccsim workspace uses: [`Rng`] (`gen`,
//! `gen_range`, `gen_bool`), [`SeedableRng`] (`from_seed`,
//! `seed_from_u64`), [`rngs::StdRng`] and [`seq::SliceRandom`]
//! (`shuffle`, `choose`). All generators are deterministic given a seed.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the full random stream
/// (the `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Primitive integer/float types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. `hi` must be strictly greater than `lo`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi + f64::EPSILON * hi.abs().max(1.0))
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        // SplitMix64 expansion of the u64 into the full seed width, as in
        // the real crate.
        let mut sm = state;
        for chunk in bytes.chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// SplitMix64. Not the ChaCha12 of the real crate, but a solid,
    /// fast, reproducible PRNG which is all the workspace requires.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is the one degenerate case for xoshiro.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
