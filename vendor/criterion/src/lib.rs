//! Offline, API-compatible stand-in for the `criterion` crate.
//!
//! Implements the surface the ccsim benches use: [`Criterion`] with
//! `bench_function` and `benchmark_group`, [`Bencher::iter`],
//! `BenchmarkGroup::{sample_size, bench_function, finish}` and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up briefly, then run for
//! `sample_size` samples; the per-iteration median, mean and min are
//! printed to stdout. No plots, no saved baselines, no statistical
//! regression analysis — enough to compare hot paths by hand.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Benchmark driver handed to each `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    /// Substring filter from the CLI (`cargo bench -- <filter>`).
    filter: Option<String>,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        // cargo passes `--bench`; a bare trailing word is a name filter.
        let filter = args.iter().skip(1).find(|a| !a.starts_with('-')).cloned();
        let quick = args.iter().any(|a| a == "--quick" || a == "--test");
        Criterion { sample_size: 20, filter, quick }
    }
}

impl Criterion {
    /// Sets the default number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Runs `f` as a benchmark named `id`.
    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.as_ref();
        if self.matches(id) {
            run_one(id, self.sample_size, self.quick, &mut f);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_owned(), sample_size: None }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measured samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Runs `f` as a benchmark named `group/id`.
    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        if self.parent.matches(&full) {
            let n = self.sample_size.unwrap_or(self.parent.sample_size);
            run_one(&full, n, self.parent.quick, &mut f);
        }
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Timer handed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Times `routine`, running it repeatedly and recording one sample
    /// per run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup run to populate caches and lazy statics.
        std::hint::black_box(routine());
        for _ in 0..self.target {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, quick: bool, f: &mut F) {
    let mut b = Bencher { samples: Vec::new(), target: if quick { 2 } else { sample_size } };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    println!(
        "{id:<40} median {:>12} mean {:>12} min {:>12} ({} samples)",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(min),
        b.samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into a group runner, mirroring the real
/// crate's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion { sample_size: 3, filter: None, quick: false };
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        // warmup + 3 samples
        assert_eq!(ran, 4);
    }

    #[test]
    fn group_sample_size_overrides() {
        let mut c = Criterion { sample_size: 10, filter: None, quick: false };
        let mut g = c.benchmark_group("g");
        let mut ran = 0u32;
        g.sample_size(2).bench_function("x", |b| b.iter(|| ran += 1));
        g.finish();
        assert_eq!(ran, 3);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion { sample_size: 2, filter: Some("yes".into()), quick: false };
        let mut ran = 0u32;
        c.bench_function("no/other", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 0);
        c.bench_function("group/yes", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
